// Package localsearch implements the local-search DAG-generation heuristic
// of §V-B and Appendix A (Algorithm 1): a Fortz–Thorup-style tabu search
// over OSPF link weights that accumulates "critical" worst-case demand
// matrices and myopically adjusts single link weights to reduce the
// worst-case ECMP link utilization over the accumulated set.
//
// Per the paper's adaptation: (i) the objective is maximum link utilization
// (not the Fortz–Thorup Φ cost), (ii) multiple demand matrices combine by
// maximum (not average), and (iii) the move neighbourhood is tuned for the
// oblivious setting.
package localsearch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// ErrInvalidInput is the typed error (wrapped with detail) Optimize returns
// when the graph cannot support a weight search: fewer than two nodes, no
// edges (the move neighbourhood would be empty and rng.Intn(0) panics), or
// an edge whose capacity is not positive and finite (the INVERSECAPACITY
// initialization maxCap/c_e would produce an Inf or NaN weight, poisoning
// every subsequent SPF).
var ErrInvalidInput = errors.New("localsearch: invalid input")

// Config tunes the search.
type Config struct {
	OuterIters int     // worst-case-DM accumulation rounds (default 4)
	InnerMoves int     // weight moves examined per round (default 40)
	TabuTenure int     // rounds a changed link stays tabu (default 5)
	TargetUtil float64 // stop early when worst utilization ≤ this (0: never)
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.OuterIters <= 0 {
		c.OuterIters = 4
	}
	if c.InnerMoves <= 0 {
		c.InnerMoves = 40
	}
	if c.TabuTenure <= 0 {
		c.TabuTenure = 5
	}
	return c
}

// Result reports the outcome of the search.
type Result struct {
	Weights     []float64        // optimized per-edge weights
	WorstUtil   float64          // worst ECMP utilization over the critical set
	CriticalDMs []*demand.Matrix // the accumulated demand set D of Algorithm 1
	Rounds      int
}

// Optimize runs Algorithm 1 against the uncertainty box and returns
// optimized link weights. The input graph's weights are left untouched;
// INVERSECAPACITY initialization follows the Cisco-recommended default the
// paper cites [16]. Degenerate inputs (single-node or edgeless graphs,
// non-positive or infinite capacities, a box of mismatched dimension)
// return an error wrapping ErrInvalidInput instead of panicking mid-search.
func Optimize(g *graph.Graph, box *demand.Box, cfg Config) (*Result, error) {
	if err := validate(g, box); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	work := g.Clone()
	// Line 4: w ← INVERSECAPACITY(c), scaled into a sane integer-ish range.
	maxCap := 0.0
	for _, e := range work.Edges() {
		if e.Capacity > maxCap {
			maxCap = e.Capacity
		}
	}
	for _, e := range work.Edges() {
		work.SetWeight(e.ID, math.Max(1, math.Round(maxCap/e.Capacity)))
	}

	var critical []*demand.Matrix
	tabu := make(map[graph.EdgeID]int)
	res := &Result{}

	for round := 0; round < cfg.OuterIters; round++ {
		res.Rounds++
		// Line 6: shortest-path DAGs for current weights; line 7: add the
		// worst-case DM for ECMP on those DAGs.
		dm, util := worstCaseDM(work, box)
		if dm != nil {
			var err error
			critical, err = appendIfNew(critical, dm)
			if err != nil {
				return nil, err
			}
		}
		res.WorstUtil = util
		if cfg.TargetUtil > 0 && util <= cfg.TargetUtil {
			break
		}
		// Line 10: FORTZTHORUP — tabu-restricted single-weight moves that
		// reduce the max utilization over the critical set.
		cur := evalWeights(work, critical)
		improved := false
		for move := 0; move < cfg.InnerMoves; move++ {
			eid := graph.EdgeID(rng.Intn(work.NumEdges()))
			if tabu[eid] > round {
				continue
			}
			e := work.Edge(eid)
			old := e.Weight
			factor := []float64{0.5, 2, 4, 0.25}[rng.Intn(4)]
			next := math.Max(1, math.Round(old*factor))
			if next == old {
				next = old + 1
			}
			work.SetLinkWeight(eid, next)
			cand := evalWeights(work, critical)
			if cand < cur-1e-12 {
				cur = cand
				tabu[eid] = round + cfg.TabuTenure
				improved = true
			} else {
				work.SetLinkWeight(eid, old)
			}
		}
		if !improved && round > 0 {
			break
		}
	}
	res.Weights = work.Weights()
	res.CriticalDMs = critical
	// Final utilization under the final weights.
	_, res.WorstUtil = worstCaseDM(work, box)
	return res, nil
}

// validate rejects inputs the search cannot run on, wrapping
// ErrInvalidInput with the specific violation.
func validate(g *graph.Graph, box *demand.Box) error {
	if g.NumNodes() < 2 {
		return fmt.Errorf("%w: graph has %d node(s), need at least 2", ErrInvalidInput, g.NumNodes())
	}
	if g.NumEdges() == 0 {
		return fmt.Errorf("%w: graph has no edges", ErrInvalidInput)
	}
	for _, e := range g.Edges() {
		if !(e.Capacity > 0) || math.IsInf(e.Capacity, 1) {
			return fmt.Errorf("%w: edge %d (%d->%d) has capacity %v, need positive and finite",
				ErrInvalidInput, e.ID, e.From, e.To, e.Capacity)
		}
	}
	if box == nil {
		return fmt.Errorf("%w: nil uncertainty box", ErrInvalidInput)
	}
	if n := g.NumNodes(); box.Min.N != n || box.Max.N != n {
		return fmt.Errorf("%w: box is %dx%d over a %d-node graph", ErrInvalidInput, box.Min.N, box.Max.N, n)
	}
	return nil
}

// worstCaseDM finds the demand matrix in the box that maximizes ECMP's link
// utilization under the graph's current weights (the WORSTCASEDM
// subroutine). Because link loads are linear in the demands for a fixed
// routing, the maximum sits at a box corner identifiable per link from the
// load-coefficient signs.
func worstCaseDM(g *graph.Graph, box *demand.Box) (*demand.Matrix, float64) {
	dags := dagx.BuildAll(g, dagx.ShortestPath)
	r := pdrouting.Uniform(g, dags)
	n := g.NumNodes()
	coeff := make([][][]float64, n)
	for t := 0; t < n; t++ {
		coeff[t] = r.LoadCoeffs(graph.NodeID(t))
	}
	bestUtil := -1.0
	var bestDM *demand.Matrix
	for e := 0; e < g.NumEdges(); e++ {
		util := 0.0
		ce := g.Edge(graph.EdgeID(e)).Capacity
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				c := coeff[t][s][e]
				if c > 0 {
					util += c * box.Max.At(graph.NodeID(s), graph.NodeID(t))
				}
			}
		}
		util /= ce
		if util > bestUtil {
			bestUtil = util
			bestDM = box.Corner(func(s, t graph.NodeID) bool { return coeff[t][s][e] > 0 })
		}
	}
	return bestDM, bestUtil
}

// evalWeights computes the worst ECMP utilization over the critical demand
// set under the graph's current weights.
func evalWeights(g *graph.Graph, critical []*demand.Matrix) float64 {
	if len(critical) == 0 {
		return 0
	}
	dags := dagx.BuildAll(g, dagx.ShortestPath)
	r := pdrouting.Uniform(g, dags)
	worst := 0.0
	for _, dm := range critical {
		if u := r.MaxUtilization(dm); u > worst {
			worst = u
		}
	}
	return worst
}

// appendIfNew adds dm to the critical set unless an equal matrix (within
// tolerance) is already present. A dimension mismatch between dm and an
// accumulated matrix is an error: comparing prefixes would silently dedup
// distinct matrices (or index out of range the other way around).
func appendIfNew(set []*demand.Matrix, dm *demand.Matrix) ([]*demand.Matrix, error) {
	for _, old := range set {
		if len(old.D) != len(dm.D) {
			return nil, fmt.Errorf("%w: critical-set matrix has %d entries, candidate has %d",
				ErrInvalidInput, len(old.D), len(dm.D))
		}
		same := true
		for i := range old.D {
			if math.Abs(old.D[i]-dm.D[i]) > 1e-12 {
				same = false
				break
			}
		}
		if same {
			return set, nil
		}
	}
	return append(set, dm), nil
}
