package gpopt

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// This file is the warm-start handoff of the online controller
// (internal/delta): an Optimizer's log-ratio parameters and Adam moments
// can be exported, re-imported, and re-seeded from an arbitrary routing,
// so a re-optimization after a demand drift or a failover swap resumes
// from the previous solution instead of the near-ECMP cold init.

// State is a deep snapshot of an Optimizer's warm-start parameters: the
// log-ratio variables θ and the Adam moment estimates, plus the Adam step
// counter the bias correction depends on. A State is only meaningful for
// the (graph, DAGs) shape it was exported from — ImportState validates
// dimensions but cannot detect a different topology of the same size.
type State struct {
	Theta [][]float64 // Theta[t][e], log-ratio per destination and edge
	M     [][]float64 // first Adam moment, same shape
	V     [][]float64 // second Adam moment, same shape
	Step  int         // Adam steps taken (bias-correction counter)
}

// ExportState deep-copies the optimizer's parameters and Adam state.
func (o *Optimizer) ExportState() *State {
	cp := func(src [][]float64) [][]float64 {
		out := make([][]float64, len(src))
		for i := range src {
			out[i] = append([]float64(nil), src[i]...)
		}
		return out
	}
	return &State{Theta: cp(o.theta), M: cp(o.m), V: cp(o.v), Step: o.step}
}

// ImportState restores a previously exported snapshot. The state's shape
// must match the optimizer's (same destination and edge counts).
func (o *Optimizer) ImportState(st *State) error {
	n := o.g.NumNodes()
	nE := o.g.NumEdges()
	check := func(name string, rows [][]float64) error {
		if len(rows) != n {
			return fmt.Errorf("gpopt: state %s has %d destinations, optimizer has %d", name, len(rows), n)
		}
		for t := range rows {
			if len(rows[t]) != nE {
				return fmt.Errorf("gpopt: state %s[%d] has %d edges, optimizer has %d", name, t, len(rows[t]), nE)
			}
		}
		return nil
	}
	if err := check("theta", st.Theta); err != nil {
		return err
	}
	if err := check("m", st.M); err != nil {
		return err
	}
	if err := check("v", st.V); err != nil {
		return err
	}
	for t := 0; t < n; t++ {
		copy(o.theta[t], st.Theta[t])
		copy(o.m[t], st.M[t])
		copy(o.v[t], st.V[t])
	}
	o.step = st.Step
	return nil
}

// Matches reports whether the optimizer was built for exactly these DAGs
// over this graph (pointer identity), i.e. whether its parameters can be
// reused as a warm start for a re-optimization on them.
func (o *Optimizer) Matches(g *graph.Graph, dags []*dagx.DAG) bool {
	if o.g != g || len(o.dags) != len(dags) {
		return false
	}
	for i := range dags {
		if o.dags[i] != dags[i] {
			return false
		}
	}
	return true
}

// SetConfig replaces the optimizer's tuning (iteration count, learning
// rate, temperatures) without touching θ or the Adam state — the warm
// re-optimization typically runs far fewer iterations than the cold one.
func (o *Optimizer) SetConfig(cfg Config) {
	o.cfg = cfg.withDefaults()
}

// minRatioLog floors log(φ) when seeding θ from a routing, so ratios the
// source routing zeroed out stay representable (softmax never emits an
// exact zero) yet effectively negligible.
const minRatioLog = -18.0

// NewFromRouting creates an optimizer whose initial parameters reproduce
// the given routing: for every node with positive outgoing ratio mass,
// θ = log φ (softmax of log-ratios returns the ratios themselves), floored
// at minRatioLog for zeroed edges. Nodes the routing leaves unassigned keep
// the standard near-ECMP initialization. The failover path of the online
// controller uses this to refine a precomputed post-failure configuration
// instead of re-optimizing from scratch.
func NewFromRouting(g *graph.Graph, dags []*dagx.DAG, cfg Config, r *pdrouting.Routing) *Optimizer {
	o := New(g, dags, cfg)
	n := g.NumNodes()
	for t := 0; t < n; t++ {
		phi := r.Phi[t]
		for u := 0; u < n; u++ {
			out := o.outsOf[t][u]
			if len(out) == 0 || u == t {
				continue
			}
			sum := 0.0
			for _, id := range out {
				sum += phi[id]
			}
			if sum <= 0 {
				continue // unassigned node: keep the ECMP-ish default
			}
			for _, id := range out {
				v := math.Log(phi[id] / sum)
				if math.IsInf(v, -1) || v < minRatioLog {
					v = minRatioLog
				}
				o.theta[t][id] = v
			}
		}
	}
	return o
}
