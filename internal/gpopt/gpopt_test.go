package gpopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/geom"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// fig1cSetup builds the Appendix B instance: Fig. 1a with unit capacities,
// the Fig. 1c DAG toward t, and the two extreme demand matrices
// D1 = (2,0), D2 = (0,2), both with OPTDAG = 1.
func fig1cSetup(t *testing.T) (*graph.Graph, map[string]graph.NodeID, []*dagx.DAG, []Scenario) {
	t.Helper()
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	member := make([]bool, g.NumEdges())
	for _, pair := range [][2]string{{"s1", "s2"}, {"s1", "v"}, {"s2", "v"}, {"s2", "t"}, {"v", "t"}} {
		id, ok := g.FindEdge(ids[pair[0]], ids[pair[1]])
		if !ok {
			t.Fatalf("missing edge %v", pair)
		}
		member[id] = true
	}
	fig1c, err := dagx.FromEdges(g, ids["t"], member)
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	dags[ids["t"]] = fig1c
	D1 := demand.NewMatrix(g.NumNodes())
	D1.Set(ids["s1"], ids["t"], 2)
	D2 := demand.NewMatrix(g.NumNodes())
	D2.Set(ids["s2"], ids["t"], 2)
	scenarios := []Scenario{NewScenario(g, D1, 1), NewScenario(g, D2, 1)}
	return g, ids, dags, scenarios
}

// TestGoldenRatio reproduces Appendix B: the optimal splitting ratios are
// φ(s1,s2) = φ(s2,t) = (√5−1)/2 and the worst-case utilization is √5−1.
func TestGoldenRatio(t *testing.T) {
	g, ids, dags, scenarios := fig1cSetup(t)
	o := New(g, dags, Config{Iters: 2500, LR: 0.03})
	obj := o.Run(scenarios)
	golden := (math.Sqrt(5) - 1) / 2
	if math.Abs(obj-2*golden) > 0.01 {
		t.Fatalf("optimized worst utilization = %g, want %g (√5−1)", obj, 2*golden)
	}
	r := o.Routing()
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es2t, _ := g.FindEdge(ids["s2"], ids["t"])
	if math.Abs(r.Phi[ids["t"]][es1s2]-golden) > 0.02 {
		t.Fatalf("φ(s1,s2) = %g, want %g", r.Phi[ids["t"]][es1s2], golden)
	}
	if math.Abs(r.Phi[ids["t"]][es2t]-golden) > 0.02 {
		t.Fatalf("φ(s2,t) = %g, want %g", r.Phi[ids["t"]][es2t], golden)
	}
}

func TestRoutingValidates(t *testing.T) {
	g, _, dags, scenarios := fig1cSetup(t)
	o := New(g, dags, Config{Iters: 50})
	o.Run(scenarios)
	if err := o.Routing().Validate(); err != nil {
		t.Fatalf("optimized routing invalid: %v", err)
	}
}

func TestObjectiveMatchesManualComputation(t *testing.T) {
	g, ids, dags, scenarios := fig1cSetup(t)
	r := pdrouting.Uniform(g, dags)
	// Manual: D1 = (2,0) with uniform split on the Fig. 1c DAG:
	// s1 sends 1 to s2, 1 to v; s2 splits its 1 into 1/2 + 1/2;
	// v gets 1 + 1/2 → (v,t) carries 3/2.
	// D2 = (0,2): s2 splits 1/1; (v,t) carries 1, (s2,t) carries 1.
	want := 1.5
	if got := Objective(r, scenarios); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Objective = %g, want %g", got, want)
	}
	_ = ids
}

func TestRunImprovesOverUniform(t *testing.T) {
	g, _, dags, scenarios := fig1cSetup(t)
	uniform := Objective(pdrouting.Uniform(g, dags), scenarios)
	o := New(g, dags, Config{Iters: 800})
	obj := o.Run(scenarios)
	if obj >= uniform {
		t.Fatalf("optimizer did not improve: %g >= uniform %g", obj, uniform)
	}
}

func TestWarmStartMonotone(t *testing.T) {
	g, _, dags, scenarios := fig1cSetup(t)
	o := New(g, dags, Config{Iters: 300})
	first := o.Run(scenarios)
	second := o.Run(scenarios)
	if second > first+0.05 {
		t.Fatalf("warm-started second run regressed: %g → %g", first, second)
	}
}

func TestEmptyScenarios(t *testing.T) {
	g, _, dags, _ := fig1cSetup(t)
	o := New(g, dags, Config{Iters: 10})
	if obj := o.Run(nil); obj != 0 {
		t.Fatalf("Run(nil) = %g, want 0", obj)
	}
}

// numericalLoss evaluates the true smoothed loss for finite-difference
// gradient checking.
func numericalLoss(o *Optimizer, scenarios []Scenario, tau float64) float64 {
	r := o.Routing()
	var utils []float64
	for _, sc := range scenarios {
		loads := make([]float64, r.G.NumEdges())
		for t, col := range sc.Cols {
			if col == nil {
				continue
			}
			lt := r.DestLoads(graph.NodeID(t), col)
			for e := range loads {
				loads[e] += lt[e]
			}
		}
		for e := range loads {
			utils = append(utils, loads[e]/(r.G.Edge(graph.EdgeID(e)).Capacity*sc.Norm))
		}
	}
	scaled := make([]float64, len(utils))
	mx := math.Inf(-1)
	for i, u := range utils {
		scaled[i] = u / tau
		if scaled[i] > mx {
			mx = scaled[i]
		}
	}
	s := 0.0
	for _, v := range scaled {
		s += math.Exp(v - mx)
	}
	return tau * (mx + math.Log(s))
}

// Property: the analytic θ-gradient matches finite differences. This is a
// white-box check of the forward/backward propagation through the DAG.
func TestPropertyGradientCheck(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g := graph.New()
		g.AddNodes(n)
		for i := 0; i < n; i++ {
			g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
		}
		for i := 0; i < n/2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*4, 1+float64(rng.Intn(3)))
			}
		}
		dags := dagx.BuildAll(g, dagx.Augmented)
		D := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					D.Set(graph.NodeID(i), graph.NodeID(j), rng.Float64()*3)
				}
			}
		}
		if D.Total() == 0 {
			return true
		}
		scenarios := []Scenario{NewScenario(g, D, 1)}
		tau := 0.3

		o := New(g, dags, Config{Iters: 1})
		// Randomize θ a bit.
		for t := range o.theta {
			for e := range o.theta[t] {
				o.theta[t][e] += rng.NormFloat64() * 0.3
			}
		}

		// Analytic gradient: replicate one optimizer iteration's gradient
		// computation by calling the internals.
		phi := make([][]float64, n)
		grad := make([][]float64, n)
		for tt := 0; tt < n; tt++ {
			phi[tt] = make([]float64, g.NumEdges())
			grad[tt] = make([]float64, g.NumEdges())
		}
		r := o.Routing()
		for tt := 0; tt < n; tt++ {
			copy(phi[tt], r.Phi[tt])
		}
		inflow := make([]float64, n)
		gIn := make([]float64, n)
		// Forward pass collecting utils.
		var utils []float64
		type dl struct {
			t     int
			loads []float64
		}
		var dls []dl
		sc := scenarios[0]
		totalLoads := make([]float64, g.NumEdges())
		for tt := 0; tt < n; tt++ {
			if sc.Cols[tt] == nil {
				continue
			}
			loads := make([]float64, g.NumEdges())
			for i := range inflow {
				inflow[i] = 0
			}
			o.forwardInto(tt, sc.Cols[tt], phi[tt], loads, inflow)
			dls = append(dls, dl{tt, loads})
			for e := range totalLoads {
				totalLoads[e] += loads[e]
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			utils = append(utils, totalLoads[e]/(g.Edge(graph.EdgeID(e)).Capacity*sc.Norm))
		}
		scaled := make([]float64, len(utils))
		for i, x := range utils {
			scaled[i] = x / tau
		}
		w := geom.Softmax(scaled, nil)
		for _, d := range dls {
			o.backward(d.t, sc.Cols[d.t], phi[d.t], inflow, gIn, w, sc.Norm, grad[d.t])
		}

		// Pick a few random (t, node) softmax blocks and compare with
		// finite differences.
		for trial := 0; trial < 4; trial++ {
			tt := rng.Intn(n)
			u := rng.Intn(n)
			out := o.outsOf[tt][u]
			if len(out) < 2 {
				continue
			}
			id := out[rng.Intn(len(out))]
			// Analytic dLoss/dθ via softmax Jacobian.
			dot := 0.0
			for _, e := range out {
				dot += grad[tt][e] * phi[tt][e]
			}
			analytic := phi[tt][id] * (grad[tt][id] - dot)
			// Finite difference.
			h := 1e-5
			o.theta[tt][id] += h
			up := numericalLoss(o, scenarios, tau)
			o.theta[tt][id] -= 2 * h
			down := numericalLoss(o, scenarios, tau)
			o.theta[tt][id] += h
			numeric := (up - down) / (2 * h)
			if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(numeric)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
