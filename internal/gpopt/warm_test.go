package gpopt

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

// diamond builds the four-node running-example-style network.
func diamond() *graph.Graph {
	g := graph.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b, 1, 1)
	g.AddLink(a, c, 1, 1)
	g.AddLink(b, d, 1, 1)
	g.AddLink(c, d, 1, 1)
	g.AddLink(b, c, 1, 1)
	return g
}

func testScenarios(g *graph.Graph) []Scenario {
	D := demand.Gravity(g, 1)
	return []Scenario{NewScenario(g, D, 1)}
}

func TestExportImportStateRoundTrip(t *testing.T) {
	g := diamond()
	dags := dagx.BuildAll(g, dagx.Augmented)
	scen := testScenarios(g)

	o := New(g, dags, Config{Iters: 40})
	o.Run(scen)
	st := o.ExportState()

	// A fresh optimizer with the imported state must produce the identical
	// routing and continue identically.
	o2 := New(g, dags, Config{Iters: 40})
	if err := o2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	r1, r2 := o.Routing(), o2.Routing()
	for dst := range r1.Phi {
		for e := range r1.Phi[dst] {
			if r1.Phi[dst][e] != r2.Phi[dst][e] {
				t.Fatalf("Phi[%d][%d]: %v != %v after state import", dst, e, r1.Phi[dst][e], r2.Phi[dst][e])
			}
		}
	}
	v1 := o.Run(scen)
	v2 := o2.Run(scen)
	if v1 != v2 {
		t.Fatalf("continued runs diverge: %v vs %v", v1, v2)
	}

	// Exported state is a deep copy: mutating it must not leak back.
	st2 := o.ExportState()
	st2.Theta[0][0] += 100
	if o.theta[0][0] == st2.Theta[0][0] {
		t.Fatal("ExportState returned a shallow copy")
	}
}

func TestImportStateShapeMismatch(t *testing.T) {
	g := diamond()
	dags := dagx.BuildAll(g, dagx.Augmented)
	o := New(g, dags, Config{Iters: 10})
	st := o.ExportState()
	st.Theta = st.Theta[:2]
	if err := o.ImportState(st); err == nil {
		t.Fatal("expected error importing truncated state")
	}
}

func TestMatches(t *testing.T) {
	g := diamond()
	dags := dagx.BuildAll(g, dagx.Augmented)
	o := New(g, dags, Config{Iters: 10})
	if !o.Matches(g, dags) {
		t.Fatal("optimizer should match its own graph and DAGs")
	}
	other := dagx.BuildAll(g, dagx.Augmented)
	if o.Matches(g, other) {
		t.Fatal("distinct DAG instances must not match")
	}
	g2 := diamond()
	if o.Matches(g2, dags) {
		t.Fatal("distinct graph instances must not match")
	}
}

func TestNewFromRoutingReproducesRouting(t *testing.T) {
	g := diamond()
	dags := dagx.BuildAll(g, dagx.Augmented)
	scen := testScenarios(g)

	src := New(g, dags, Config{Iters: 60})
	src.Run(scen)
	want := src.Routing()

	warm := NewFromRouting(g, dags, Config{Iters: 60}, want)
	got := warm.Routing()
	for dst := range want.Phi {
		for e := range want.Phi[dst] {
			if d := math.Abs(got.Phi[dst][e] - want.Phi[dst][e]); d > 1e-6 {
				t.Fatalf("Phi[%d][%d]: warm %v, want %v (Δ %v)", dst, e, got.Phi[dst][e], want.Phi[dst][e], d)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetConfigKeepsState(t *testing.T) {
	g := diamond()
	dags := dagx.BuildAll(g, dagx.Augmented)
	scen := testScenarios(g)
	o := New(g, dags, Config{Iters: 30})
	o.Run(scen)
	before := o.Routing()
	o.SetConfig(Config{Iters: 5})
	after := o.Routing()
	for dst := range before.Phi {
		for e := range before.Phi[dst] {
			if before.Phi[dst][e] != after.Phi[dst][e] {
				t.Fatal("SetConfig must not alter parameters")
			}
		}
	}
	if o.cfg.Iters != 5 {
		t.Fatalf("cfg.Iters = %d, want 5", o.cfg.Iters)
	}
}
