package gpopt

import (
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// BenchmarkOptimizerStep measures one full gradient iteration of the
// splitting optimizer — materialize, forward, smooth-max, backward, Adam —
// on Geant with three demand scenarios. Run with -benchmem: the headline
// is the 0 allocs/op column (the arena refactor's contract, also pinned
// hard by TestRunStepAllocs), recorded in BENCH_PR9.json by `make bench`.
func BenchmarkOptimizerStep(b *testing.B) {
	g, err := topo.Load("Geant")
	if err != nil {
		b.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	o := New(g, dags, Config{Iters: 1, Workers: 1})

	n := g.NumNodes()
	scenarios := make([]Scenario, 0, 3)
	for s := 0; s < 3; s++ {
		D := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && (i+j+s)%3 == 0 {
					D.Set(graph.NodeID(i), graph.NodeID(j), 1+float64((i+s)%5))
				}
			}
		}
		scenarios = append(scenarios, NewScenario(g, D, 1))
	}
	if !o.prepare(scenarios) {
		b.Fatal("scenario set produced no tasks")
	}
	o.stepOnce(scenarios, 0.1, nil, nil, nil)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.stepOnce(scenarios, 0.1, nil, nil, nil)
	}
}
