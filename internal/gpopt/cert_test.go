package gpopt

import (
	"math"
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/mcf"
	"github.com/coyote-te/coyote/internal/topo"
)

// runningExample builds the 4-node network of Fig. 1 / Appendix B.
func runningExample(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	v := g.AddNode("v")
	tt := g.AddNode("t")
	g.AddLink(s1, s2, 1, 1)
	g.AddLink(s1, v, 1, 1)
	g.AddLink(s2, v, 1, 1)
	g.AddLink(s2, tt, 1, 1)
	g.AddLink(v, tt, 1, 1)
	return g
}

// TestCertifyNormRunningExample certifies the OPTDAG of the running
// example and cross-checks the certified optimum against the mcf solvers.
func TestCertifyNormRunningExample(t *testing.T) {
	g := runningExample(t)
	D := demand.NewMatrix(g.NumNodes())
	tt, _ := g.NodeByName("t")
	s1, _ := g.NodeByName("s1")
	s2, _ := g.NodeByName("s2")
	D.Set(s1, tt, 1)
	D.Set(s2, tt, 1)
	dags := dagx.BuildAll(g, dagx.Augmented)
	cert, err := CertifyNorm(g, dags, D)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Gap > certTol {
		t.Fatalf("gap %g", cert.Gap)
	}
	want, _, err := mcf.MinMLUExact(g, dags, D)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cert.Objective-want) > 1e-9*(1+want) {
		t.Fatalf("certified %g, mcf %g", cert.Objective, want)
	}
}

// TestCertifyNormCorpus certifies gravity-demand OPTDAGs across a corpus
// subset, free and DAG-restricted.
func TestCertifyNormCorpus(t *testing.T) {
	for _, name := range []string{"Abilene", "NSF", "Germany"} {
		g, err := topo.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		D := demand.Gravity(g, 1)
		dags := dagx.BuildAll(g, dagx.Augmented)
		for _, tc := range []struct {
			label string
			dags  []*dagx.DAG
		}{{"free", nil}, {"in-dag", dags}} {
			cert, err := CertifyNorm(g, tc.dags, D)
			if err != nil {
				t.Fatalf("%s %s: %v", name, tc.label, err)
			}
			want, _, err := mcf.MinMLUExact(g, tc.dags, D)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cert.Objective-want) > 1e-7*(1+want) {
				t.Fatalf("%s %s: certified %g, mcf %g", name, tc.label, cert.Objective, want)
			}
			if cert.DualBound > cert.Objective+1e-6*(1+cert.Objective) {
				t.Fatalf("%s %s: dual bound %g exceeds primal %g", name, tc.label, cert.DualBound, cert.Objective)
			}
		}
	}
}

// TestCertifyNormUnroutable rejects demands with no path in the DAGs.
func TestCertifyNormUnroutable(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddLink(a, b, 1, 1)
	g.AddEdge(b, c, 1, 1) // one-way: nothing reaches a from c... (c→a impossible)
	D := demand.NewMatrix(3)
	D.Set(c, a, 1)
	if _, err := CertifyNorm(g, nil, D); err == nil {
		t.Fatal("expected an error for unroutable demand")
	}
}

// TestCertifyScenarios verifies the scenario-set checker accepts exact
// norms and flags corrupted ones.
func TestCertifyScenarios(t *testing.T) {
	g, err := topo.Load("Abilene")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	base := demand.Gravity(g, 1)
	shifted := base.Clone().Scale(1.2)
	mats := []*demand.Matrix{base, shifted}
	norms := make([]float64, len(mats))
	for i, D := range mats {
		v, _, err := mcf.MinMLUExact(g, dags, D)
		if err != nil {
			t.Fatal(err)
		}
		norms[i] = v
	}
	if idx, err := CertifyScenarios(g, dags, mats, norms, 1e-6); err != nil {
		t.Fatalf("scenario %d: %v", idx, err)
	}
	norms[1] *= 1.5 // corrupt
	idx, err := CertifyScenarios(g, dags, mats, norms, 1e-6)
	if err == nil || idx != 1 {
		t.Fatalf("corrupted norm not flagged (idx %d, err %v)", idx, err)
	}
}
