package gpopt

import (
	"testing"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/topo"
)

// TestRunStepAllocs is the alloc-regression guard for the optimizer's inner
// loop (tier-1, run in CI): once New has sized the arenas and prepare has
// seen the scenario set, a full gradient iteration — materialize, forward,
// smooth-max, backward, Adam — must not allocate at all.
func TestRunStepAllocs(t *testing.T) {
	g, err := topo.Load("Geant")
	if err != nil {
		t.Fatal(err)
	}
	dags := dagx.BuildAll(g, dagx.Augmented)
	o := New(g, dags, Config{Iters: 1, Workers: 1})

	n := g.NumNodes()
	scenarios := make([]Scenario, 0, 3)
	for s := 0; s < 3; s++ {
		D := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && (i+j+s)%3 == 0 {
					D.Set(graph.NodeID(i), graph.NodeID(j), 1+float64((i+s)%5))
				}
			}
		}
		scenarios = append(scenarios, NewScenario(g, D, 1))
	}

	if !o.prepare(scenarios) {
		t.Fatal("scenario set produced no tasks")
	}
	// Warm up once so lazily-grown capacities (none expected) settle.
	o.stepOnce(scenarios, 0.1, nil, nil, nil)

	allocs := testing.AllocsPerRun(20, func() {
		o.stepOnce(scenarios, 0.1, nil, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("gpopt step allocated %v times per iteration, want 0", allocs)
	}

	// prepare itself must also be allocation-free once the arenas have been
	// grown for this scenario set.
	allocs = testing.AllocsPerRun(20, func() {
		o.prepare(scenarios)
	})
	if allocs != 0 {
		t.Fatalf("prepare allocated %v times per call, want 0", allocs)
	}
}
