// Package gpopt optimizes in-DAG traffic splitting ratios, implementing the
// geometric-programming approach of §V-C and Appendix C of the paper.
//
// Following the paper, the optimizer works with log-ratio variables
// (φ̃ = log φ). The per-destination simplex constraints Σφ = 1 are enforced
// exactly by a softmax reparameterization — precisely the normalized
// monomial family that each condensation step of the paper's iterative
// MLGP produces. For a fixed demand matrix the per-link utilization is a
// posynomial in φ, hence log-convex in φ̃; the worst-case objective over a
// finite scenario set is smoothed with a temperature-annealed log-sum-exp
// ("SmoothMax") and minimized with Adam. The paper's outer machinery —
// growing the finite scenario set with worst-case demand matrices — lives
// in package oblivious.
package gpopt

import (
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/geom"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// Scenario is one demand matrix of the finite optimization set, together
// with its normalization constant (the demands-aware optimum within the
// DAGs, OPTDAG(D)); the optimizer minimizes max over scenarios and links of
// load/(capacity·Norm).
type Scenario struct {
	Cols [][]float64 // Cols[t][v] = demand from v toward destination t (nil column: no demand)
	Norm float64     // positive normalization constant (OPTDAG of the matrix)
}

// NewScenario precomputes per-destination demand columns for D.
func NewScenario(g *graph.Graph, D *demand.Matrix, norm float64) Scenario {
	n := g.NumNodes()
	s := Scenario{Cols: make([][]float64, n), Norm: norm}
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				s.Cols[t] = col
				break
			}
		}
	}
	return s
}

// Config tunes the optimizer.
type Config struct {
	Iters     int     // gradient steps per Run (default 400)
	LR        float64 // Adam learning rate (default 0.05)
	TauStart  float64 // initial smooth-max temperature (default 0.25)
	TauEnd    float64 // final temperature (default 0.02)
	InitSPLog float64 // log-ratio head start of shortest-path edges over augmented ones (default 2)
}

func (c Config) withDefaults() Config {
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.TauStart <= 0 {
		c.TauStart = 0.25
	}
	if c.TauEnd <= 0 {
		c.TauEnd = 0.02
	}
	if c.InitSPLog == 0 {
		c.InitSPLog = 2
	}
	return c
}

// Optimizer carries the log-space parameters θ (one per destination and DAG
// edge) and Adam state, allowing warm-started re-optimization as the
// adversarial scenario set grows.
type Optimizer struct {
	g    *graph.Graph
	dags []*dagx.DAG
	cfg  Config

	theta [][]float64 // theta[t][e]; only DAG member edges are meaningful
	m, v  [][]float64 // Adam moments
	step  int

	// outsOf[t][u] caches DAG out-edge lists.
	outsOf [][][]graph.EdgeID
}

// New creates an optimizer over the given DAGs. Initial ratios approximate
// ECMP: shortest-path edges get a log-ratio head start of cfg.InitSPLog
// over augmentation-only edges, so optimization starts near the traditional
// configuration (the solution-space point the paper guarantees COYOTE never
// falls below).
func New(g *graph.Graph, dags []*dagx.DAG, cfg Config) *Optimizer {
	cfg = cfg.withDefaults()
	o := &Optimizer{g: g, dags: dags, cfg: cfg}
	n := g.NumNodes()
	o.theta = make([][]float64, n)
	o.m = make([][]float64, n)
	o.v = make([][]float64, n)
	o.outsOf = make([][][]graph.EdgeID, n)
	for t := 0; t < n; t++ {
		o.theta[t] = make([]float64, g.NumEdges())
		o.m[t] = make([]float64, g.NumEdges())
		o.v[t] = make([]float64, g.NumEdges())
		o.outsOf[t] = make([][]graph.EdgeID, n)
		sp := dagx.ShortestPath(g, graph.NodeID(t))
		for u := 0; u < n; u++ {
			o.outsOf[t][u] = dags[t].OutEdges(g, graph.NodeID(u))
			for _, id := range o.outsOf[t][u] {
				if sp.Member[id] {
					o.theta[t][id] = cfg.InitSPLog
				}
			}
		}
	}
	return o
}

// Routing materializes the current parameters as a PD routing
// (φ = softmax(θ) over each node's DAG out-edges).
func (o *Optimizer) Routing() *pdrouting.Routing {
	r := pdrouting.NewZero(o.g, o.dags)
	n := o.g.NumNodes()
	for t := 0; t < n; t++ {
		for u := 0; u < n; u++ {
			out := o.outsOf[t][u]
			if len(out) == 0 || graph.NodeID(u) == graph.NodeID(t) {
				continue
			}
			logits := make([]float64, len(out))
			for i, id := range out {
				logits[i] = o.theta[t][id]
			}
			probs := geom.Softmax(logits, nil)
			for i, id := range out {
				r.Phi[t][id] = probs[i]
			}
		}
	}
	return r
}

// Objective evaluates the true (unsmoothed) worst normalized utilization of
// routing r over the scenarios.
func Objective(r *pdrouting.Routing, scenarios []Scenario) float64 {
	worst := 0.0
	for _, sc := range scenarios {
		loads := make([]float64, r.G.NumEdges())
		for t, col := range sc.Cols {
			if col == nil {
				continue
			}
			lt := r.DestLoads(graph.NodeID(t), col)
			for e := range loads {
				loads[e] += lt[e]
			}
		}
		for e := range loads {
			u := loads[e] / (r.G.Edge(graph.EdgeID(e)).Capacity * sc.Norm)
			if u > worst {
				worst = u
			}
		}
	}
	return worst
}

// Run performs cfg.Iters Adam steps against the given scenario set and
// returns the final true objective (worst normalized utilization). It may
// be called repeatedly; parameters and Adam state persist across calls.
func (o *Optimizer) Run(scenarios []Scenario) float64 {
	cfg := o.cfg
	nE := o.g.NumEdges()
	n := o.g.NumNodes()

	phi := make([][]float64, n)   // per destination ratios
	grad := make([][]float64, n)  // dLoss/dφ
	gradT := make([][]float64, n) // dLoss/dθ
	for t := 0; t < n; t++ {
		phi[t] = make([]float64, nE)
		grad[t] = make([]float64, nE)
		gradT[t] = make([]float64, nE)
	}
	inflow := make([]float64, n)
	gIn := make([]float64, n)

	type destLoad struct {
		si, t int
		loads []float64
	}

	for it := 0; it < cfg.Iters; it++ {
		frac := float64(it) / float64(max(cfg.Iters-1, 1))
		tau := cfg.TauStart * math.Pow(cfg.TauEnd/cfg.TauStart, frac)

		// Materialize φ = softmax(θ).
		for t := 0; t < n; t++ {
			for u := 0; u < n; u++ {
				out := o.outsOf[t][u]
				if len(out) == 0 {
					continue
				}
				logits := make([]float64, len(out))
				for i, id := range out {
					logits[i] = o.theta[t][id]
				}
				probs := geom.Softmax(logits, nil)
				for i, id := range out {
					phi[t][id] = probs[i]
				}
			}
			for e := range grad[t] {
				grad[t][e] = 0
				gradT[t][e] = 0
			}
		}

		// Forward: per (scenario, destination) loads; total per-scenario
		// utilizations.
		var perDest []destLoad
		utils := make([]float64, 0, len(scenarios)*nE)
		utilIdx := make([][]int, len(scenarios)) // scenario → index of edge e in utils
		scLoads := make([][]float64, len(scenarios))
		for si, sc := range scenarios {
			total := make([]float64, nE)
			for t := 0; t < n; t++ {
				col := sc.Cols[t]
				if col == nil {
					continue
				}
				loads := o.forward(t, col, phi[t], inflow)
				perDest = append(perDest, destLoad{si: si, t: t, loads: loads})
				for e := 0; e < nE; e++ {
					total[e] += loads[e]
				}
			}
			scLoads[si] = total
			utilIdx[si] = make([]int, nE)
			for e := 0; e < nE; e++ {
				utilIdx[si][e] = len(utils)
				utils = append(utils, total[e]/(o.g.Edge(graph.EdgeID(e)).Capacity*sc.Norm))
			}
		}
		if len(utils) == 0 {
			return 0
		}

		// Smooth-max gradient: w_i = exp(u_i/τ)/Σ.
		w := softmaxScaled(utils, tau)

		// Backward per (scenario, destination).
		for _, dl := range perDest {
			sc := scenarios[dl.si]
			col := sc.Cols[dl.t]
			o.backward(dl.t, col, phi[dl.t], dl.loads, inflow, gIn, func(e int) float64 {
				return w[utilIdx[dl.si][e]] / (o.g.Edge(graph.EdgeID(e)).Capacity * sc.Norm)
			}, grad[dl.t])
		}

		// φ-gradient → θ-gradient through the softmax Jacobian, then Adam.
		o.step++
		beta1, beta2 := 0.9, 0.999
		bc1 := 1 - math.Pow(beta1, float64(o.step))
		bc2 := 1 - math.Pow(beta2, float64(o.step))
		for t := 0; t < n; t++ {
			for u := 0; u < n; u++ {
				out := o.outsOf[t][u]
				if len(out) < 2 {
					continue // single-edge nodes have fixed φ = 1
				}
				dot := 0.0
				for _, id := range out {
					dot += grad[t][id] * phi[t][id]
				}
				for _, id := range out {
					gradT[t][id] = phi[t][id] * (grad[t][id] - dot)
				}
				for _, id := range out {
					gth := gradT[t][id]
					o.m[t][id] = beta1*o.m[t][id] + (1-beta1)*gth
					o.v[t][id] = beta2*o.v[t][id] + (1-beta2)*gth*gth
					mhat := o.m[t][id] / bc1
					vhat := o.v[t][id] / bc2
					o.theta[t][id] -= cfg.LR * mhat / (math.Sqrt(vhat) + 1e-12)
				}
			}
		}
	}
	return Objective(o.Routing(), scenarios)
}

// forward propagates col toward destination t with ratios phiT, returning
// the per-edge loads. The caller-provided inflow buffer is reused.
func (o *Optimizer) forward(t int, col []float64, phiT []float64, inflow []float64) []float64 {
	g := o.g
	d := o.dags[t]
	for i := range inflow {
		inflow[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	loads := make([]float64, g.NumEdges())
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			f := inflow[u] * phiT[id]
			loads[id] = f
			inflow[g.Edge(id).To] += f
		}
	}
	return loads
}

// backward accumulates dLoss/dφ into gPhi given upstream per-edge load
// gradients gLoad(e). It re-runs the forward recurrence to recover inflows,
// then walks the DAG in reverse topological order.
func (o *Optimizer) backward(t int, col []float64, phiT, loads, inflow, gIn []float64, gLoad func(e int) float64, gPhi []float64) {
	g := o.g
	d := o.dags[t]
	for i := range inflow {
		inflow[i] = 0
		gIn[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			inflow[g.Edge(id).To] += inflow[u] * phiT[id]
		}
	}
	order := d.Order
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			to := g.Edge(id).To
			up := gLoad(int(id)) + gIn[to]
			gIn[u] += up * phiT[id]
			gPhi[id] += up * inflow[u]
		}
	}
}

// softmaxScaled returns the weights of SmoothMax's gradient:
// exp(u_i/τ)/Σ exp(u_j/τ).
func softmaxScaled(u []float64, tau float64) []float64 {
	scaled := make([]float64, len(u))
	for i, x := range u {
		scaled[i] = x / tau
	}
	return geom.Softmax(scaled, nil)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
