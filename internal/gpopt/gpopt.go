// Package gpopt optimizes in-DAG traffic splitting ratios, implementing the
// geometric-programming approach of §V-C and Appendix C of the paper.
//
// Following the paper, the optimizer works with log-ratio variables
// (φ̃ = log φ). The per-destination simplex constraints Σφ = 1 are enforced
// exactly by a softmax reparameterization — precisely the normalized
// monomial family that each condensation step of the paper's iterative
// MLGP produces. For a fixed demand matrix the per-link utilization is a
// posynomial in φ, hence log-convex in φ̃; the worst-case objective over a
// finite scenario set is smoothed with a temperature-annealed log-sum-exp
// ("SmoothMax") and minimized with Adam. The paper's outer machinery —
// growing the finite scenario set with worst-case demand matrices — lives
// in package oblivious.
package gpopt

import (
	"context"
	"math"
	"time"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/geom"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/spf"
)

// Scenario is one demand matrix of the finite optimization set, together
// with its normalization constant (the demands-aware optimum within the
// DAGs, OPTDAG(D)); the optimizer minimizes max over scenarios and links of
// load/(capacity·Norm).
type Scenario struct {
	Cols [][]float64 // Cols[t][v] = demand from v toward destination t (nil column: no demand)
	Norm float64     // positive normalization constant (OPTDAG of the matrix)
}

// NewScenario precomputes per-destination demand columns for D.
func NewScenario(g *graph.Graph, D *demand.Matrix, norm float64) Scenario {
	n := g.NumNodes()
	s := Scenario{Cols: make([][]float64, n), Norm: norm}
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				s.Cols[t] = col
				break
			}
		}
	}
	return s
}

// Config tunes the optimizer.
type Config struct {
	Iters     int     // gradient steps per Run (default 400)
	LR        float64 // Adam learning rate (default 0.05)
	TauStart  float64 // initial smooth-max temperature (default 0.25)
	TauEnd    float64 // final temperature (default 0.02)
	InitSPLog float64 // log-ratio head start of shortest-path edges over augmented ones (default 2)
	Workers   int     // worker-pool size for the per-(scenario, destination) passes (≤ 0 = GOMAXPROCS); never changes results
}

func (c Config) withDefaults() Config {
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.TauStart <= 0 {
		c.TauStart = 0.25
	}
	if c.TauEnd <= 0 {
		c.TauEnd = 0.02
	}
	if c.InitSPLog == 0 {
		c.InitSPLog = 2
	}
	return c
}

// Optimizer carries the log-space parameters θ (one per destination and DAG
// edge) and Adam state, allowing warm-started re-optimization as the
// adversarial scenario set grows.
//
// Each gradient step fans its per-(scenario, destination) forward and
// backward flow propagations, and its per-destination softmax/Adam
// updates, across a worker pool of Config.Workers goroutines (DESIGN.md
// §4). All cross-leaf floating-point reductions happen serially in a fixed
// order, so a Run's result is bit-identical for any worker count.
type Optimizer struct {
	g    *graph.Graph
	dags []*dagx.DAG
	cfg  Config

	// θ and the Adam moments live in one flat arena (3·n·nE float64s,
	// allocated once per topology); theta/m/v are row views into it, so all
	// existing per-destination indexing — including the warm-state
	// export/import in warm.go — works unchanged while the parameter state
	// stays a single contiguous block.
	paramArena []float64
	theta      [][]float64 // theta[t][e]; only DAG member edges are meaningful
	m, v       [][]float64 // Adam moments
	step       int

	// outsOf[t][u] caches DAG out-edge lists as CSR-style views into one
	// shared arena (no per-(t,u) slice headers on the heap).
	outsOf    [][][]graph.EdgeID
	outsArena []graph.EdgeID

	// scratch holds every buffer Run and materialize need, sized once per
	// topology (and grown only when the scenario set does), so steady-state
	// gradient iterations allocate nothing (TestRunStepAllocs).
	scratch runScratch
}

// task is one forward/backward work unit: a (scenario, destination) pair
// with demand.
type task struct{ si, t int }

// runScratch is the reusable workspace of Run. The parts that depend only
// on the topology (per-destination φ/gradient rows, per-destination
// backward buffers, softmax scratch) are allocated in New; the parts that
// scale with the scenario set (task list, per-task load/inflow rows,
// per-scenario totals and utilizations) are grown by prepare on the first
// Run that sees a larger set and reused afterwards. Nothing in here ever
// escapes the optimizer (DESIGN.md §12: scratch never escapes,
// instrumentation never touches the numeric path).
type runScratch struct {
	phi, grad, gradT [][]float64 // row views, n × nE, backed by gradArena
	gradArena        []float64

	logits, probs [][]float64 // per-destination softmax scratch, n × maxOutDeg

	destInflow, destGIn [][]float64 // per-destination backward buffers, n × n

	tasks      []task
	byDest     [][]int     // byDest[t] = indices into tasks, scenario order
	taskLoads  [][]float64 // row views, len(tasks) × nE
	taskInflow [][]float64 // row views, len(tasks) × n
	scLoads    [][]float64 // row views, len(scenarios) × nE
	taskArena  []float64   // backs taskLoads + taskInflow
	scArena    []float64   // backs scLoads
	utils      []float64   // len(scenarios)·nE; utilization of edge e in scenario si at index si·nE+e
	scaled     []float64   // utils/τ, softmax input
	w          []float64   // smooth-max weights, softmax output

	// The par.For leaf closures are built once in New and reused every
	// iteration (a closure passed to For escapes to its worker goroutines,
	// so a fresh literal per call would heap-allocate). Iteration-varying
	// state flows through the fields below instead of captures.
	scenarios     []Scenario // current Run's scenario set (set by prepare)
	bc1, bc2      float64    // Adam bias corrections for the current step
	fnMaterialize func(t int)
	fnForward     func(i int)
	fnBackward    func(t int)
	fnAdam        func(t int)
}

// New creates an optimizer over the given DAGs. Initial ratios approximate
// ECMP: shortest-path edges get a log-ratio head start of cfg.InitSPLog
// over augmentation-only edges, so optimization starts near the traditional
// configuration (the solution-space point the paper guarantees COYOTE never
// falls below).
func New(g *graph.Graph, dags []*dagx.DAG, cfg Config) *Optimizer {
	cfg = cfg.withDefaults()
	o := &Optimizer{g: g, dags: dags, cfg: cfg}
	n, nE := g.NumNodes(), g.NumEdges()

	// Parameter arena: θ, m, v as contiguous rows of one block.
	o.paramArena = make([]float64, 3*n*nE)
	o.theta = sliceRows(o.paramArena[0:n*nE], n, nE)
	o.m = sliceRows(o.paramArena[n*nE:2*n*nE], n, nE)
	o.v = sliceRows(o.paramArena[2*n*nE:], n, nE)

	// DAG out-edge lists, CSR-packed: count, then carve views.
	total := 0
	for t := 0; t < n; t++ {
		for e := 0; e < nE; e++ {
			if dags[t].Member[e] {
				total++
			}
		}
	}
	o.outsArena = make([]graph.EdgeID, 0, total)
	o.outsOf = make([][][]graph.EdgeID, n)
	maxDeg := 0
	for t := 0; t < n; t++ {
		o.outsOf[t] = make([][]graph.EdgeID, n)
		spMember := spMembership(g, dags[t])
		for u := 0; u < n; u++ {
			start := len(o.outsArena)
			for _, id := range g.Out(graph.NodeID(u)) {
				if dags[t].Member[id] {
					o.outsArena = append(o.outsArena, id)
					if spMember[id] {
						o.theta[t][id] = cfg.InitSPLog
					}
				}
			}
			o.outsOf[t][u] = o.outsArena[start:len(o.outsArena):len(o.outsArena)]
			if d := len(o.outsOf[t][u]); d > maxDeg {
				maxDeg = d
			}
		}
	}

	// Topology-sized scratch (scenario-dependent parts grow in prepare).
	sc := &o.scratch
	sc.gradArena = make([]float64, 3*n*nE)
	sc.phi = sliceRows(sc.gradArena[0:n*nE], n, nE)
	sc.grad = sliceRows(sc.gradArena[n*nE:2*n*nE], n, nE)
	sc.gradT = sliceRows(sc.gradArena[2*n*nE:], n, nE)
	softmaxArena := make([]float64, 2*n*maxDeg)
	sc.logits = sliceRows(softmaxArena[0:n*maxDeg], n, maxDeg)
	sc.probs = sliceRows(softmaxArena[n*maxDeg:], n, maxDeg)
	backArena := make([]float64, 2*n*n)
	sc.destInflow = sliceRows(backArena[0:n*n], n, n)
	sc.destGIn = sliceRows(backArena[n*n:], n, n)
	sc.byDest = make([][]int, n)

	sc.fnMaterialize = func(t int) {
		o.materialize(t, sc.phi[t])
		for e := range sc.grad[t] {
			sc.grad[t][e] = 0
			sc.gradT[t][e] = 0
		}
	}
	sc.fnForward = func(i int) {
		tk := sc.tasks[i]
		for j := range sc.taskInflow[i] {
			sc.taskInflow[i][j] = 0
		}
		o.forwardInto(tk.t, sc.scenarios[tk.si].Cols[tk.t], sc.phi[tk.t], sc.taskLoads[i], sc.taskInflow[i])
	}
	sc.fnBackward = func(t int) {
		if len(sc.byDest[t]) == 0 {
			return
		}
		inflow, gIn := sc.destInflow[t], sc.destGIn[t]
		for _, ti := range sc.byDest[t] {
			si := sc.tasks[ti].si
			s := sc.scenarios[si]
			o.backward(t, s.Cols[t], sc.phi[t], inflow, gIn, sc.w[si*nE:(si+1)*nE], s.Norm, sc.grad[t])
		}
	}
	sc.fnAdam = func(t int) {
		const beta1, beta2 = 0.9, 0.999
		for u := 0; u < n; u++ {
			out := o.outsOf[t][u]
			if len(out) < 2 {
				continue // single-edge nodes have fixed φ = 1
			}
			dot := 0.0
			for _, id := range out {
				dot += sc.grad[t][id] * sc.phi[t][id]
			}
			for _, id := range out {
				sc.gradT[t][id] = sc.phi[t][id] * (sc.grad[t][id] - dot)
			}
			for _, id := range out {
				gth := sc.gradT[t][id]
				o.m[t][id] = beta1*o.m[t][id] + (1-beta1)*gth
				o.v[t][id] = beta2*o.v[t][id] + (1-beta2)*gth*gth
				mhat := o.m[t][id] / sc.bc1
				vhat := o.v[t][id] / sc.bc2
				o.theta[t][id] -= o.cfg.LR * mhat / (math.Sqrt(vhat) + 1e-12)
			}
		}
	}
	return o
}

// sliceRows carves a flat arena into rows equal-length full-capacity views.
func sliceRows(arena []float64, rows, width int) [][]float64 {
	out := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		out[i] = arena[i*width : (i+1)*width : (i+1)*width]
	}
	return out
}

// spMembership returns the shortest-path DAG membership vector for d.Dst:
// derived from the DAG's cached construction-time distance field when
// present (zero Dijkstras), cold spf.ToDestination otherwise.
func spMembership(g *graph.Graph, d *dagx.DAG) []bool {
	tree := d.Tree()
	if tree == nil {
		tree = spf.ToDestination(g, d.Dst)
	}
	return tree.ShortestPathEdges(g)
}

// Routing materializes the current parameters as a PD routing
// (φ = softmax(θ) over each node's DAG out-edges). Destinations are
// materialized in parallel; each writes only its own Phi row.
func (o *Optimizer) Routing() *pdrouting.Routing {
	r := pdrouting.NewZero(o.g, o.dags)
	n := o.g.NumNodes()
	par.For(o.cfg.Workers, n, func(t int) {
		o.materialize(t, r.Phi[t])
	})
	return r
}

// materialize writes φ = softmax(θ) for destination t into phiT, using t's
// private softmax scratch rows (safe under the per-destination fan-out).
func (o *Optimizer) materialize(t int, phiT []float64) {
	n := o.g.NumNodes()
	for u := 0; u < n; u++ {
		out := o.outsOf[t][u]
		if len(out) == 0 || u == t {
			continue
		}
		logits := o.scratch.logits[t][:len(out)]
		probs := o.scratch.probs[t][:len(out)]
		for i, id := range out {
			logits[i] = o.theta[t][id]
		}
		geom.Softmax(logits, probs)
		for i, id := range out {
			phiT[id] = probs[i]
		}
	}
}

// Objective evaluates the true (unsmoothed) worst normalized utilization of
// routing r over the scenarios. Scenarios are evaluated in parallel (one
// worker per CPU); the per-scenario accumulation stays serial in
// destination order and the final max-reduction is exact, so the value is
// worker-count-independent.
func Objective(r *pdrouting.Routing, scenarios []Scenario) float64 {
	return objective(r, scenarios, 0)
}

// objective is Objective bounded to the given worker count, so Run honors
// Config.Workers end to end.
func objective(r *pdrouting.Routing, scenarios []Scenario, workers int) float64 {
	perScenario := make([]float64, len(scenarios))
	par.For(workers, len(scenarios), func(si int) {
		sc := scenarios[si]
		loads := make([]float64, r.G.NumEdges())
		for t, col := range sc.Cols {
			if col == nil {
				continue
			}
			lt := r.DestLoads(graph.NodeID(t), col)
			for e := range loads {
				loads[e] += lt[e]
			}
		}
		worst := 0.0
		for e := range loads {
			u := loads[e] / (r.G.Edge(graph.EdgeID(e)).Capacity * sc.Norm)
			if u > worst {
				worst = u
			}
		}
		perScenario[si] = worst
	})
	worst := 0.0
	for _, v := range perScenario {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Run performs cfg.Iters Adam steps against the given scenario set and
// returns the final true objective (worst normalized utilization). It may
// be called repeatedly; parameters and Adam state persist across calls.
//
// Within every step the per-(scenario, destination) forward passes, the
// per-destination backward passes, and the per-destination Adam updates
// each fan out across the worker pool; the per-scenario load totals and the
// smooth-max weights are reduced serially in a fixed order, so the result
// is bit-identical for any Config.Workers.
func (o *Optimizer) Run(scenarios []Scenario) float64 {
	return o.RunCtx(context.Background(), scenarios)
}

// RunCtx is Run with tracing: when ctx carries an obs.Tracer it records a
// gpopt.run span whose attributes break the wall time into the forward
// (propagation) and backward (gradient) passes, aggregated across
// iterations. The extra clock reads happen only under tracing, and nothing
// observed feeds back into the optimization — results are bit-identical
// with tracing on or off.
func (o *Optimizer) RunCtx(ctx context.Context, scenarios []Scenario) float64 {
	_, span := obs.StartSpan(ctx, "gpopt.run")
	var fwdTime, bwdTime time.Duration
	defer func() {
		if span != nil {
			span.Attr("iters", o.cfg.Iters).
				Attr("scenarios", len(scenarios)).
				Attr("forward_ms", fwdTime.Seconds()*1e3).
				Attr("backward_ms", bwdTime.Seconds()*1e3)
			span.End()
		}
	}()
	cfg := o.cfg
	if !o.prepare(scenarios) {
		return 0
	}
	for it := 0; it < cfg.Iters; it++ {
		frac := float64(it) / float64(max(cfg.Iters-1, 1))
		tau := cfg.TauStart * math.Pow(cfg.TauEnd/cfg.TauStart, frac)
		o.stepOnce(scenarios, tau, span, &fwdTime, &bwdTime)
	}
	return objective(o.Routing(), scenarios, cfg.Workers)
}

// prepare (re)builds the task list for the scenario set and grows the
// scenario-sized scratch arenas if needed. It reports whether any work
// exists. With an unchanged (or smaller) scenario set everything is reused
// and nothing allocates.
func (o *Optimizer) prepare(scenarios []Scenario) bool {
	sc := &o.scratch
	sc.scenarios = scenarios
	n, nE := o.g.NumNodes(), o.g.NumEdges()

	// The work units of one gradient step: every (scenario, destination)
	// pair with demand, in a fixed order. byDest groups the task indices
	// per destination so the backward pass can accumulate into grad[t]
	// race-free (one goroutine per destination) yet in scenario order.
	sc.tasks = sc.tasks[:0]
	for t := range sc.byDest {
		sc.byDest[t] = sc.byDest[t][:0]
	}
	for si, s := range scenarios {
		for t := 0; t < n; t++ {
			if s.Cols[t] == nil {
				continue
			}
			sc.byDest[t] = append(sc.byDest[t], len(sc.tasks))
			sc.tasks = append(sc.tasks, task{si: si, t: t})
		}
	}
	if len(sc.tasks) == 0 {
		return false
	}

	// Row views depend only on the counts, so an unchanged task/scenario
	// count reuses the previous views outright (zero allocations).
	nT := len(sc.tasks)
	if nT != len(sc.taskLoads) {
		if need := nT * (nE + n); cap(sc.taskArena) < need {
			sc.taskArena = make([]float64, need)
		}
		sc.taskLoads = sliceRows(sc.taskArena[0:nT*nE], nT, nE)
		sc.taskInflow = sliceRows(sc.taskArena[nT*nE:nT*(nE+n)], nT, n)
	}

	nS := len(scenarios)
	if nS != len(sc.scLoads) {
		if need := nS * nE; cap(sc.scArena) < need {
			sc.scArena = make([]float64, need)
			sc.utils = make([]float64, need)
			sc.scaled = make([]float64, need)
			sc.w = make([]float64, need)
		}
		sc.scLoads = sliceRows(sc.scArena[:nS*nE], nS, nE)
		sc.utils = sc.utils[:cap(sc.utils)][:nS*nE]
		sc.scaled = sc.scaled[:cap(sc.scaled)][:nS*nE]
		sc.w = sc.w[:cap(sc.w)][:nS*nE]
	}
	return true
}

// stepOnce performs one Adam iteration at temperature tau. It touches only
// the optimizer's parameter arena and prepared scratch — zero allocations
// in steady state (TestRunStepAllocs pins this).
func (o *Optimizer) stepOnce(scenarios []Scenario, tau float64, span *obs.Span, fwdTime, bwdTime *time.Duration) {
	cfg := o.cfg
	sc := &o.scratch
	n, nE := o.g.NumNodes(), o.g.NumEdges()

	// Materialize φ = softmax(θ) and clear gradients, per destination.
	par.For(cfg.Workers, n, sc.fnMaterialize)

	var passStart time.Time
	if span.Active() {
		passStart = time.Now()
	}

	// Forward: per-(scenario, destination) propagations in parallel...
	par.For(cfg.Workers, len(sc.tasks), sc.fnForward)
	// ...then per-scenario totals and utilizations reduced serially in
	// task order. The utilization of edge e in scenario si sits at index
	// si·nE+e of utils, so no index indirection is needed anywhere.
	for si := range sc.scLoads {
		for e := range sc.scLoads[si] {
			sc.scLoads[si][e] = 0
		}
	}
	for i, tk := range sc.tasks {
		total := sc.scLoads[tk.si]
		for e := 0; e < nE; e++ {
			total[e] += sc.taskLoads[i][e]
		}
	}
	for si, s := range scenarios {
		base := si * nE
		for e := 0; e < nE; e++ {
			sc.utils[base+e] = sc.scLoads[si][e] / (o.g.Edge(graph.EdgeID(e)).Capacity * s.Norm)
		}
	}

	// Smooth-max gradient: w_i = exp(u_i/τ)/Σ.
	for i, x := range sc.utils {
		sc.scaled[i] = x / tau
	}
	geom.Softmax(sc.scaled, sc.w)

	if span.Active() {
		now := time.Now()
		*fwdTime += now.Sub(passStart)
		passStart = now
	}

	// Backward: one goroutine per destination, scenarios in order.
	par.For(cfg.Workers, n, sc.fnBackward)

	// φ-gradient → θ-gradient through the softmax Jacobian, then Adam;
	// destinations own disjoint parameter rows.
	o.step++
	sc.bc1 = 1 - math.Pow(0.9, float64(o.step))
	sc.bc2 = 1 - math.Pow(0.999, float64(o.step))
	par.For(cfg.Workers, n, sc.fnAdam)
	if span.Active() {
		*bwdTime += time.Since(passStart)
	}
}

// forwardInto propagates col toward destination t with ratios phiT, writing
// the per-edge loads into loads (fully overwritten). The caller-provided
// inflow scratch must be zeroed on entry.
func (o *Optimizer) forwardInto(t int, col []float64, phiT, loads, inflow []float64) {
	g := o.g
	d := o.dags[t]
	for i := range loads {
		loads[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			f := inflow[u] * phiT[id]
			loads[id] = f
			inflow[g.Edge(id).To] += f
		}
	}
}

// backward accumulates dLoss/dφ into gPhi given the scenario's smooth-max
// weight row w (indexed by edge) and normalization norm: the upstream load
// gradient of edge e is w[e]/(capacity(e)·norm). It re-runs the forward
// recurrence to recover inflows, then walks the DAG in reverse topological
// order. The caller-provided inflow and gIn scratch buffers are overwritten.
func (o *Optimizer) backward(t int, col []float64, phiT, inflow, gIn, w []float64, norm float64, gPhi []float64) {
	g := o.g
	d := o.dags[t]
	for i := range inflow {
		inflow[i] = 0
		gIn[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			inflow[g.Edge(id).To] += inflow[u] * phiT[id]
		}
	}
	order := d.Order
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			to := g.Edge(id).To
			up := w[id]/(g.Edge(id).Capacity*norm) + gIn[to]
			gIn[u] += up * phiT[id]
			gPhi[id] += up * inflow[u]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
