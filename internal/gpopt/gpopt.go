// Package gpopt optimizes in-DAG traffic splitting ratios, implementing the
// geometric-programming approach of §V-C and Appendix C of the paper.
//
// Following the paper, the optimizer works with log-ratio variables
// (φ̃ = log φ). The per-destination simplex constraints Σφ = 1 are enforced
// exactly by a softmax reparameterization — precisely the normalized
// monomial family that each condensation step of the paper's iterative
// MLGP produces. For a fixed demand matrix the per-link utilization is a
// posynomial in φ, hence log-convex in φ̃; the worst-case objective over a
// finite scenario set is smoothed with a temperature-annealed log-sum-exp
// ("SmoothMax") and minimized with Adam. The paper's outer machinery —
// growing the finite scenario set with worst-case demand matrices — lives
// in package oblivious.
package gpopt

import (
	"context"
	"math"
	"time"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/geom"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/par"
	"github.com/coyote-te/coyote/internal/pdrouting"
)

// Scenario is one demand matrix of the finite optimization set, together
// with its normalization constant (the demands-aware optimum within the
// DAGs, OPTDAG(D)); the optimizer minimizes max over scenarios and links of
// load/(capacity·Norm).
type Scenario struct {
	Cols [][]float64 // Cols[t][v] = demand from v toward destination t (nil column: no demand)
	Norm float64     // positive normalization constant (OPTDAG of the matrix)
}

// NewScenario precomputes per-destination demand columns for D.
func NewScenario(g *graph.Graph, D *demand.Matrix, norm float64) Scenario {
	n := g.NumNodes()
	s := Scenario{Cols: make([][]float64, n), Norm: norm}
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		for _, d := range col {
			if d > 0 {
				s.Cols[t] = col
				break
			}
		}
	}
	return s
}

// Config tunes the optimizer.
type Config struct {
	Iters     int     // gradient steps per Run (default 400)
	LR        float64 // Adam learning rate (default 0.05)
	TauStart  float64 // initial smooth-max temperature (default 0.25)
	TauEnd    float64 // final temperature (default 0.02)
	InitSPLog float64 // log-ratio head start of shortest-path edges over augmented ones (default 2)
	Workers   int     // worker-pool size for the per-(scenario, destination) passes (≤ 0 = GOMAXPROCS); never changes results
}

func (c Config) withDefaults() Config {
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.TauStart <= 0 {
		c.TauStart = 0.25
	}
	if c.TauEnd <= 0 {
		c.TauEnd = 0.02
	}
	if c.InitSPLog == 0 {
		c.InitSPLog = 2
	}
	return c
}

// Optimizer carries the log-space parameters θ (one per destination and DAG
// edge) and Adam state, allowing warm-started re-optimization as the
// adversarial scenario set grows.
//
// Each gradient step fans its per-(scenario, destination) forward and
// backward flow propagations, and its per-destination softmax/Adam
// updates, across a worker pool of Config.Workers goroutines (DESIGN.md
// §4). All cross-leaf floating-point reductions happen serially in a fixed
// order, so a Run's result is bit-identical for any worker count.
type Optimizer struct {
	g    *graph.Graph
	dags []*dagx.DAG
	cfg  Config

	theta [][]float64 // theta[t][e]; only DAG member edges are meaningful
	m, v  [][]float64 // Adam moments
	step  int

	// outsOf[t][u] caches DAG out-edge lists.
	outsOf [][][]graph.EdgeID

	nodeBuf *par.Pool // pooled per-node scratch (inflow / gradient buffers)
}

// New creates an optimizer over the given DAGs. Initial ratios approximate
// ECMP: shortest-path edges get a log-ratio head start of cfg.InitSPLog
// over augmentation-only edges, so optimization starts near the traditional
// configuration (the solution-space point the paper guarantees COYOTE never
// falls below).
func New(g *graph.Graph, dags []*dagx.DAG, cfg Config) *Optimizer {
	cfg = cfg.withDefaults()
	o := &Optimizer{g: g, dags: dags, cfg: cfg, nodeBuf: par.NewPool(g.NumNodes())}
	n := g.NumNodes()
	o.theta = make([][]float64, n)
	o.m = make([][]float64, n)
	o.v = make([][]float64, n)
	o.outsOf = make([][][]graph.EdgeID, n)
	for t := 0; t < n; t++ {
		o.theta[t] = make([]float64, g.NumEdges())
		o.m[t] = make([]float64, g.NumEdges())
		o.v[t] = make([]float64, g.NumEdges())
		o.outsOf[t] = make([][]graph.EdgeID, n)
		sp := dagx.ShortestPath(g, graph.NodeID(t))
		for u := 0; u < n; u++ {
			o.outsOf[t][u] = dags[t].OutEdges(g, graph.NodeID(u))
			for _, id := range o.outsOf[t][u] {
				if sp.Member[id] {
					o.theta[t][id] = cfg.InitSPLog
				}
			}
		}
	}
	return o
}

// Routing materializes the current parameters as a PD routing
// (φ = softmax(θ) over each node's DAG out-edges). Destinations are
// materialized in parallel; each writes only its own Phi row.
func (o *Optimizer) Routing() *pdrouting.Routing {
	r := pdrouting.NewZero(o.g, o.dags)
	n := o.g.NumNodes()
	par.For(o.cfg.Workers, n, func(t int) {
		o.materialize(t, r.Phi[t])
	})
	return r
}

// materialize writes φ = softmax(θ) for destination t into phiT.
func (o *Optimizer) materialize(t int, phiT []float64) {
	n := o.g.NumNodes()
	var logits, probs []float64
	for u := 0; u < n; u++ {
		out := o.outsOf[t][u]
		if len(out) == 0 || u == t {
			continue
		}
		if cap(logits) < len(out) {
			logits = make([]float64, len(out))
			probs = make([]float64, len(out))
		}
		logits = logits[:len(out)]
		probs = probs[:len(out)]
		for i, id := range out {
			logits[i] = o.theta[t][id]
		}
		geom.Softmax(logits, probs)
		for i, id := range out {
			phiT[id] = probs[i]
		}
	}
}

// Objective evaluates the true (unsmoothed) worst normalized utilization of
// routing r over the scenarios. Scenarios are evaluated in parallel (one
// worker per CPU); the per-scenario accumulation stays serial in
// destination order and the final max-reduction is exact, so the value is
// worker-count-independent.
func Objective(r *pdrouting.Routing, scenarios []Scenario) float64 {
	return objective(r, scenarios, 0)
}

// objective is Objective bounded to the given worker count, so Run honors
// Config.Workers end to end.
func objective(r *pdrouting.Routing, scenarios []Scenario, workers int) float64 {
	perScenario := make([]float64, len(scenarios))
	par.For(workers, len(scenarios), func(si int) {
		sc := scenarios[si]
		loads := make([]float64, r.G.NumEdges())
		for t, col := range sc.Cols {
			if col == nil {
				continue
			}
			lt := r.DestLoads(graph.NodeID(t), col)
			for e := range loads {
				loads[e] += lt[e]
			}
		}
		worst := 0.0
		for e := range loads {
			u := loads[e] / (r.G.Edge(graph.EdgeID(e)).Capacity * sc.Norm)
			if u > worst {
				worst = u
			}
		}
		perScenario[si] = worst
	})
	worst := 0.0
	for _, v := range perScenario {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Run performs cfg.Iters Adam steps against the given scenario set and
// returns the final true objective (worst normalized utilization). It may
// be called repeatedly; parameters and Adam state persist across calls.
//
// Within every step the per-(scenario, destination) forward passes, the
// per-destination backward passes, and the per-destination Adam updates
// each fan out across the worker pool; the per-scenario load totals and the
// smooth-max weights are reduced serially in a fixed order, so the result
// is bit-identical for any Config.Workers.
func (o *Optimizer) Run(scenarios []Scenario) float64 {
	return o.RunCtx(context.Background(), scenarios)
}

// RunCtx is Run with tracing: when ctx carries an obs.Tracer it records a
// gpopt.run span whose attributes break the wall time into the forward
// (propagation) and backward (gradient) passes, aggregated across
// iterations. The extra clock reads happen only under tracing, and nothing
// observed feeds back into the optimization — results are bit-identical
// with tracing on or off.
func (o *Optimizer) RunCtx(ctx context.Context, scenarios []Scenario) float64 {
	_, span := obs.StartSpan(ctx, "gpopt.run")
	var fwdTime, bwdTime time.Duration
	defer func() {
		if span != nil {
			span.Attr("iters", o.cfg.Iters).
				Attr("scenarios", len(scenarios)).
				Attr("forward_ms", fwdTime.Seconds()*1e3).
				Attr("backward_ms", bwdTime.Seconds()*1e3)
			span.End()
		}
	}()
	cfg := o.cfg
	nE := o.g.NumEdges()
	n := o.g.NumNodes()

	phi := make([][]float64, n)   // per destination ratios
	grad := make([][]float64, n)  // dLoss/dφ
	gradT := make([][]float64, n) // dLoss/dθ
	for t := 0; t < n; t++ {
		phi[t] = make([]float64, nE)
		grad[t] = make([]float64, nE)
		gradT[t] = make([]float64, nE)
	}

	// The work units of one gradient step: every (scenario, destination)
	// pair with demand, in a fixed order. byDest groups the task indices
	// per destination so the backward pass can accumulate into grad[t]
	// race-free (one goroutine per destination) yet in scenario order.
	type task struct{ si, t int }
	var tasks []task
	byDest := make([][]int, n)
	for si, sc := range scenarios {
		for t := 0; t < n; t++ {
			if sc.Cols[t] == nil {
				continue
			}
			byDest[t] = append(byDest[t], len(tasks))
			tasks = append(tasks, task{si: si, t: t})
		}
	}
	if len(tasks) == 0 {
		return 0
	}
	taskLoads := make([][]float64, len(tasks))
	for i := range taskLoads {
		taskLoads[i] = make([]float64, nE)
	}

	for it := 0; it < cfg.Iters; it++ {
		frac := float64(it) / float64(max(cfg.Iters-1, 1))
		tau := cfg.TauStart * math.Pow(cfg.TauEnd/cfg.TauStart, frac)

		// Materialize φ = softmax(θ) and clear gradients, per destination.
		par.For(cfg.Workers, n, func(t int) {
			o.materialize(t, phi[t])
			for e := range grad[t] {
				grad[t][e] = 0
				gradT[t][e] = 0
			}
		})

		var passStart time.Time
		if span.Active() {
			passStart = time.Now()
		}

		// Forward: per-(scenario, destination) propagations in parallel...
		par.For(cfg.Workers, len(tasks), func(i int) {
			tk := tasks[i]
			inflow := o.nodeBuf.Get()
			o.forwardInto(tk.t, scenarios[tk.si].Cols[tk.t], phi[tk.t], taskLoads[i], inflow)
			o.nodeBuf.Put(inflow)
		})
		// ...then per-scenario totals and utilizations reduced serially in
		// task order.
		utils := make([]float64, 0, len(scenarios)*nE)
		utilIdx := make([][]int, len(scenarios)) // scenario → index of edge e in utils
		scLoads := make([][]float64, len(scenarios))
		for si := range scenarios {
			scLoads[si] = make([]float64, nE)
		}
		for i, tk := range tasks {
			total := scLoads[tk.si]
			for e := 0; e < nE; e++ {
				total[e] += taskLoads[i][e]
			}
		}
		for si, sc := range scenarios {
			utilIdx[si] = make([]int, nE)
			for e := 0; e < nE; e++ {
				utilIdx[si][e] = len(utils)
				utils = append(utils, scLoads[si][e]/(o.g.Edge(graph.EdgeID(e)).Capacity*sc.Norm))
			}
		}

		// Smooth-max gradient: w_i = exp(u_i/τ)/Σ.
		w := softmaxScaled(utils, tau)

		if span.Active() {
			now := time.Now()
			fwdTime += now.Sub(passStart)
			passStart = now
		}

		// Backward: one goroutine per destination, scenarios in order.
		par.For(cfg.Workers, n, func(t int) {
			if len(byDest[t]) == 0 {
				return
			}
			inflow := o.nodeBuf.Get()
			gIn := o.nodeBuf.Get()
			for _, ti := range byDest[t] {
				si := tasks[ti].si
				sc := scenarios[si]
				o.backward(t, sc.Cols[t], phi[t], inflow, gIn, func(e int) float64 {
					return w[utilIdx[si][e]] / (o.g.Edge(graph.EdgeID(e)).Capacity * sc.Norm)
				}, grad[t])
			}
			o.nodeBuf.Put(inflow)
			o.nodeBuf.Put(gIn)
		})

		// φ-gradient → θ-gradient through the softmax Jacobian, then Adam;
		// destinations own disjoint parameter rows.
		o.step++
		beta1, beta2 := 0.9, 0.999
		bc1 := 1 - math.Pow(beta1, float64(o.step))
		bc2 := 1 - math.Pow(beta2, float64(o.step))
		par.For(cfg.Workers, n, func(t int) {
			for u := 0; u < n; u++ {
				out := o.outsOf[t][u]
				if len(out) < 2 {
					continue // single-edge nodes have fixed φ = 1
				}
				dot := 0.0
				for _, id := range out {
					dot += grad[t][id] * phi[t][id]
				}
				for _, id := range out {
					gradT[t][id] = phi[t][id] * (grad[t][id] - dot)
				}
				for _, id := range out {
					gth := gradT[t][id]
					o.m[t][id] = beta1*o.m[t][id] + (1-beta1)*gth
					o.v[t][id] = beta2*o.v[t][id] + (1-beta2)*gth*gth
					mhat := o.m[t][id] / bc1
					vhat := o.v[t][id] / bc2
					o.theta[t][id] -= cfg.LR * mhat / (math.Sqrt(vhat) + 1e-12)
				}
			}
		})
		if span.Active() {
			bwdTime += time.Since(passStart)
		}
	}
	return objective(o.Routing(), scenarios, cfg.Workers)
}

// forwardInto propagates col toward destination t with ratios phiT, writing
// the per-edge loads into loads (fully overwritten). The caller-provided
// inflow scratch must be zeroed on entry.
func (o *Optimizer) forwardInto(t int, col []float64, phiT, loads, inflow []float64) {
	g := o.g
	d := o.dags[t]
	for i := range loads {
		loads[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			f := inflow[u] * phiT[id]
			loads[id] = f
			inflow[g.Edge(id).To] += f
		}
	}
}

// backward accumulates dLoss/dφ into gPhi given upstream per-edge load
// gradients gLoad(e). It re-runs the forward recurrence to recover inflows,
// then walks the DAG in reverse topological order. The caller-provided
// inflow and gIn scratch buffers are overwritten.
func (o *Optimizer) backward(t int, col []float64, phiT, inflow, gIn []float64, gLoad func(e int) float64, gPhi []float64) {
	g := o.g
	d := o.dags[t]
	for i := range inflow {
		inflow[i] = 0
		gIn[i] = 0
	}
	for v, dem := range col {
		if v != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			inflow[g.Edge(id).To] += inflow[u] * phiT[id]
		}
	}
	order := d.Order
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if int(u) == t || inflow[u] == 0 {
			continue
		}
		for _, id := range o.outsOf[t][u] {
			to := g.Edge(id).To
			up := gLoad(int(id)) + gIn[to]
			gIn[u] += up * phiT[id]
			gPhi[id] += up * inflow[u]
		}
	}
}

// softmaxScaled returns the weights of SmoothMax's gradient:
// exp(u_i/τ)/Σ exp(u_j/τ).
func softmaxScaled(u []float64, tau float64) []float64 {
	scaled := make([]float64, len(u))
	for i, x := range u {
		scaled[i] = x / tau
	}
	return geom.Softmax(scaled, nil)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
