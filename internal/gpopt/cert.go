// Dual certificates for scenario normalizations (the role Theorem 5's LP
// duals play in the paper): every finite-scenario optimization divides
// link loads by OPTDAG(D), so a wrong normalization silently skews the
// whole objective. CertifyNorm re-derives the min-MLU optimum on the
// shared lp.Model builder and machine-checks it against its own LP dual —
// a certificate that is verified independently of the solver's internals,
// so a bug in the simplex cannot self-certify.
package gpopt

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/lp"
)

// Certificate is a verified optimality proof for an OPTDAG value.
//
// The min-MLU primal is
//
//	min α   s.t.  out−in flow conservation = d_vt,  Σ_t f_te ≤ α·c_e
//
// whose dual reads: max Σ d_vt·w_tv subject to w_t,from − w_t,to ≤ z_e on
// every DAG edge, Σ z_e·c_e ≤ 1, z ≥ 0 (w_tt ≡ 0). Weak duality makes any
// dual-feasible (w, z) a lower bound on OPTDAG; the certificate exhibits
// one whose objective meets the primal value, proving optimality.
type Certificate struct {
	Objective float64 // primal optimum (OPTDAG(D))
	DualBound float64 // Σ d·w of the verified dual-feasible point
	Gap       float64 // |Objective − DualBound| / (1 + |Objective|)
}

// certTol is the relative duality-gap and dual-feasibility tolerance.
const certTol = 1e-6

// CertifyNorm computes OPTDAG(D) for the given DAGs on the sparse LP core
// and verifies the result with an independently checked dual certificate.
// It returns an error if the LP is not optimal (e.g. unroutable demand) or
// if the dual point fails feasibility or leaves a duality gap — either
// means the normalization cannot be trusted.
func CertifyNorm(g *graph.Graph, dags []*dagx.DAG, D *demand.Matrix) (*Certificate, error) {
	n := g.NumNodes()
	nE := g.NumEdges()
	prob := lp.NewModel(lp.Minimize)
	alpha := prob.AddVar(0, lp.Inf, 1)

	// Mirror of the OPTDAG formulation (mcf.MinMLUExactBasis), built here
	// so the certificate owns its row indexing.
	fVar := make([][]int, n)
	active := make([]bool, n)
	consRow := make([][]int, n) // consRow[t][v] = row index, or -1
	cols := make([][]float64, n)
	for t := 0; t < n; t++ {
		col := D.ToDestination(graph.NodeID(t))
		cols[t] = col
		for _, d := range col {
			if d > 0 {
				active[t] = true
				break
			}
		}
		if !active[t] {
			continue
		}
		fVar[t] = make([]int, nE)
		for e := 0; e < nE; e++ {
			fVar[t][e] = -1
			if dags == nil || dags[t].Member[e] {
				fVar[t][e] = prob.AddVars(1)
			}
		}
		consRow[t] = make([]int, n)
		for v := 0; v < n; v++ {
			consRow[t][v] = -1
			if v == t {
				continue
			}
			var terms []lp.Term
			for _, id := range g.Out(graph.NodeID(v)) {
				if fVar[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: fVar[t][id], Coeff: 1})
				}
			}
			for _, id := range g.In(graph.NodeID(v)) {
				if fVar[t][id] >= 0 {
					terms = append(terms, lp.Term{Var: fVar[t][id], Coeff: -1})
				}
			}
			consRow[t][v] = prob.AddEQ(terms, col[v])
		}
	}
	capRow := make([]int, nE)
	for e := 0; e < nE; e++ {
		capRow[e] = -1
	}
	for _, e := range g.Edges() {
		terms := []lp.Term{{Var: alpha, Coeff: -e.Capacity}}
		for t := 0; t < n; t++ {
			if active[t] && fVar[t][e.ID] >= 0 {
				terms = append(terms, lp.Term{Var: fVar[t][e.ID], Coeff: 1})
			}
		}
		if len(terms) > 1 {
			capRow[e.ID] = prob.AddLE(terms, 0)
		}
	}

	sol, err := prob.Solve(nil)
	if err != nil {
		return nil, fmt.Errorf("gpopt: certificate LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("gpopt: certificate LP is %v", sol.Status)
	}
	if sol.Stats.DenseFallback || sol.Duals == nil {
		// The dense oracle reports no duals; a fallback here means the
		// sparse engine failed on this instance — the exact situation a
		// certificate must refuse to paper over.
		return nil, fmt.Errorf("gpopt: certificate LP has no dual values (dense fallback: %v)", sol.Stats.DenseFallback)
	}

	// Extract the dual point: w from the conservation rows, z = −y from
	// the ≤-capacity rows (minimization convention: a binding upper row
	// carries y ≤ 0).
	z := make([]float64, nE)
	for e := 0; e < nE; e++ {
		if capRow[e] >= 0 {
			z[e] = -sol.Duals[capRow[e]]
		}
		if z[e] < -certTol {
			return nil, fmt.Errorf("gpopt: capacity dual z[%d] = %g < 0", e, z[e])
		}
		if z[e] < 0 {
			z[e] = 0
		}
	}
	// Dual feasibility, checked from first principles.
	sumZC := 0.0
	for _, e := range g.Edges() {
		sumZC += z[e.ID] * e.Capacity
	}
	if sumZC > 1+certTol {
		return nil, fmt.Errorf("gpopt: dual infeasible: Σ z·c = %g > 1", sumZC)
	}
	dualObj := 0.0
	for t := 0; t < n; t++ {
		if !active[t] {
			continue
		}
		w := func(v int) float64 {
			if v == t || consRow[t][v] < 0 {
				return 0
			}
			return sol.Duals[consRow[t][v]]
		}
		for _, e := range g.Edges() {
			if fVar[t][e.ID] < 0 {
				continue
			}
			if excess := w(int(e.From)) - w(int(e.To)) - z[e.ID]; excess > certTol {
				return nil, fmt.Errorf("gpopt: dual infeasible: destination %d edge %d violates w_from − w_to ≤ z by %g",
					t, e.ID, excess)
			}
		}
		for v := 0; v < n; v++ {
			if d := cols[t][v]; d > 0 {
				dualObj += d * w(v)
			}
		}
	}
	gap := math.Abs(sol.Objective-dualObj) / (1 + math.Abs(sol.Objective))
	if gap > certTol {
		return nil, fmt.Errorf("gpopt: duality gap %g (primal %g, dual %g)", gap, sol.Objective, dualObj)
	}
	return &Certificate{Objective: sol.Objective, DualBound: dualObj, Gap: gap}, nil
}

// CertifyScenarios certifies the normalization constant of every scenario
// in the finite optimization set against a fresh, dual-verified OPTDAG
// recomputation. It returns the index of the first scenario whose Norm
// deviates from its certified optimum by more than rtol, or −1 if all
// pass. Scenarios normalized by the FPTAS (whose Norm may legitimately sit
// within (1+eps) of optimal) should be checked with rtol ≥ the eps used.
func CertifyScenarios(g *graph.Graph, dags []*dagx.DAG, D []*demand.Matrix, norms []float64, rtol float64) (int, error) {
	if len(D) != len(norms) {
		return -1, fmt.Errorf("gpopt: %d matrices but %d norms", len(D), len(norms))
	}
	for i := range D {
		cert, err := CertifyNorm(g, dags, D[i])
		if err != nil {
			return i, err
		}
		if math.Abs(cert.Objective-norms[i]) > rtol*(1+math.Abs(cert.Objective)) {
			return i, fmt.Errorf("gpopt: scenario %d normalized by %g but certified optimum is %g",
				i, norms[i], cert.Objective)
		}
	}
	return -1, nil
}
