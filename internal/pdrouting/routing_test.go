package pdrouting

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
)

// paperExample builds Fig. 1a with the augmented DAG toward t.
func paperExample(t *testing.T) (*graph.Graph, map[string]graph.NodeID, []*dagx.DAG) {
	t.Helper()
	g := graph.New()
	ids := map[string]graph.NodeID{
		"s1": g.AddNode("s1"),
		"s2": g.AddNode("s2"),
		"v":  g.AddNode("v"),
		"t":  g.AddNode("t"),
	}
	g.AddLink(ids["s1"], ids["s2"], 1, 1)
	g.AddLink(ids["s1"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["v"], 1, 1)
	g.AddLink(ids["s2"], ids["t"], 1, 1)
	g.AddLink(ids["v"], ids["t"], 1, 1)
	dags := dagx.BuildAll(g, dagx.Augmented)
	return g, ids, dags
}

// TestECMPWorstCaseDemands checks ECMP on the running example under unit
// weights. The SP DAG toward t is then s1→{s2,v}, s2→{t}, v→{t}. Demand
// (2,0) splits perfectly (loads 1,1 → MxLU 1); demand (0,2) forces all of
// s2's traffic onto (s2,t) (MxLU 2 while the optimum is 1). The paper's
// Fig. 1b shows the *best achievable* ECMP weight setting, with oblivious
// ratio 3/2; unit weights are strictly worse (ratio 2), consistent with
// the paper's claim that no weights beat 3/2.
func TestECMPWorstCaseDemands(t *testing.T) {
	g, ids, _ := paperExample(t)
	spDags := dagx.BuildAll(g, dagx.ShortestPath)
	r := Uniform(g, spDags)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Demand (2, 0): each of (s2,t) and (v,t) carries 1.
	D1 := demand.NewMatrix(g.NumNodes())
	D1.Set(ids["s1"], ids["t"], 2)
	if mlu := r.MaxUtilization(D1); math.Abs(mlu-1.0) > 1e-9 {
		t.Fatalf("ECMP MxLU(2,0) = %g, want 1.0", mlu)
	}
	// Demand (0, 2): s2 has a single shortest path, so (s2,t) carries 2.
	D2 := demand.NewMatrix(g.NumNodes())
	D2.Set(ids["s2"], ids["t"], 2)
	if mlu := r.MaxUtilization(D2); math.Abs(mlu-2.0) > 1e-9 {
		t.Fatalf("ECMP MxLU(0,2) = %g, want 2.0", mlu)
	}
}

// TestECMPFig1bWeights reproduces the exact Fig. 1b configuration by
// choosing weights that make both s1 and s2 split: w(s2,t)=2 puts s2's
// detour via v on a shortest path, and w(s1,v)=2 keeps s1's two paths at
// equal cost. Demand (2,0) then loads (v,t) with 3/2, the 3/2 oblivious
// performance the paper quotes.
func TestECMPFig1bWeights(t *testing.T) {
	g, ids, _ := paperExample(t)
	es2t, _ := g.FindEdge(ids["s2"], ids["t"])
	g.SetLinkWeight(es2t, 2)
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	g.SetLinkWeight(es1v, 2)
	spDags := dagx.BuildAll(g, dagx.ShortestPath)
	r := Uniform(g, spDags)
	D1 := demand.NewMatrix(g.NumNodes())
	D1.Set(ids["s1"], ids["t"], 2)
	if mlu := r.MaxUtilization(D1); math.Abs(mlu-1.5) > 1e-9 {
		t.Fatalf("ECMP MxLU(2,0) = %g, want 1.5 (paper Fig. 1b)", mlu)
	}
	evt, _ := g.FindEdge(ids["v"], ids["t"])
	loads := r.LinkLoads(D1)
	if math.Abs(loads[evt]-1.5) > 1e-9 {
		t.Fatalf("load(v,t) = %g, want 1.5", loads[evt])
	}
}

// TestCoyoteFig1cRatios verifies the Fig. 1c configuration: s1 splits 1/2
// to s2 and 1/2 to v; s2 splits 2/3 to t and 1/3 to v; v sends 1 to t.
// With demand (2,0): load(s2,t) = 2·(1/2)·(2/3) = 2/3; load(v,t) = 1 +
// 2·(1/2)·(1/3) = 4/3 → MxLU 4/3, matching the paper's performance claim.
func TestCoyoteFig1cRatios(t *testing.T) {
	g, ids, dags := paperExample(t)
	r := Uniform(g, dags)
	tdag := dags[ids["t"]]
	// Check the augmented DAG orientation v->s2? No: in Fig. 1c traffic
	// flows s2 -> v. Our augmentation orients the tied link v->s2 (id
	// order). The paper's hand-drawn DAG uses s2->v; both are valid DAGs.
	// Build the Fig. 1c DAG explicitly.
	member := make([]bool, g.NumEdges())
	for _, pair := range [][2]string{{"s1", "s2"}, {"s1", "v"}, {"s2", "v"}, {"s2", "t"}, {"v", "t"}} {
		id, ok := g.FindEdge(ids[pair[0]], ids[pair[1]])
		if !ok {
			t.Fatalf("missing edge %v", pair)
		}
		member[id] = true
	}
	fig1c, err := dagx.FromEdges(g, ids["t"], member)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	dags2 := make([]*dagx.DAG, len(dags))
	copy(dags2, dags)
	dags2[ids["t"]] = fig1c
	r = NewZero(g, dags2)
	for tt := range dags2 {
		if graph.NodeID(tt) != ids["t"] {
			// Uniform ratios elsewhere (unused by this test).
			u := Uniform(g, dags2)
			r.Phi[tt] = u.Phi[tt]
		}
	}
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	es2v, _ := g.FindEdge(ids["s2"], ids["v"])
	es2t, _ := g.FindEdge(ids["s2"], ids["t"])
	evt, _ := g.FindEdge(ids["v"], ids["t"])
	if err := r.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es1s2: 0.5, es1v: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRatios(ids["t"], ids["s2"], map[graph.EdgeID]float64{es2t: 2.0 / 3, es2v: 1.0 / 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRatios(ids["t"], ids["v"], map[graph.EdgeID]float64{evt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_ = tdag

	D1 := demand.NewMatrix(g.NumNodes())
	D1.Set(ids["s1"], ids["t"], 2)
	if mlu := r.MaxUtilization(D1); math.Abs(mlu-4.0/3) > 1e-9 {
		t.Fatalf("Fig1c MxLU(2,0) = %g, want 4/3", mlu)
	}
	D2 := demand.NewMatrix(g.NumNodes())
	D2.Set(ids["s2"], ids["t"], 2)
	if mlu := r.MaxUtilization(D2); math.Abs(mlu-4.0/3) > 1e-9 {
		t.Fatalf("Fig1c MxLU(0,2) = %g, want 4/3", mlu)
	}
}

func TestSourceFractionsConservation(t *testing.T) {
	g, ids, dags := paperExample(t)
	r := Uniform(g, dags)
	f := r.SourceFractions(ids["s1"], ids["t"])
	if math.Abs(f[ids["t"]]-1) > 1e-9 {
		t.Fatalf("all flow must reach t: f[t] = %g", f[ids["t"]])
	}
	if math.Abs(f[ids["s1"]]-1) > 1e-9 {
		t.Fatalf("f_st(s) must be 1, got %g", f[ids["s1"]])
	}
}

func TestExpectedHops(t *testing.T) {
	g, ids, _ := paperExample(t)
	spDags := dagx.BuildAll(g, dagx.ShortestPath)
	r := Uniform(g, spDags)
	// s1 → t: both 2-hop paths → expected 2.
	if h := r.ExpectedHops(ids["s1"], ids["t"]); math.Abs(h-2) > 1e-9 {
		t.Fatalf("ExpectedHops(s1,t) = %g, want 2", h)
	}
	if h := r.ExpectedHops(ids["t"], ids["t"]); h != 0 {
		t.Fatalf("ExpectedHops(t,t) = %g, want 0", h)
	}
}

func TestLoadCoeffsLinearity(t *testing.T) {
	g, ids, dags := paperExample(t)
	r := Uniform(g, dags)
	C := r.LoadCoeffs(ids["t"])
	// Route demand 3 from s1: loads must equal 3·C[s1].
	col := make([]float64, g.NumNodes())
	col[ids["s1"]] = 3
	loads := r.DestLoads(ids["t"], col)
	for e := range loads {
		if math.Abs(loads[e]-3*C[ids["s1"]][e]) > 1e-9 {
			t.Fatalf("edge %d: load %g != 3·coeff %g", e, loads[e], 3*C[ids["s1"]][e])
		}
	}
}

func TestSetRatiosErrors(t *testing.T) {
	g, ids, dags := paperExample(t)
	r := Uniform(g, dags)
	es2t, _ := g.FindEdge(ids["s2"], ids["t"])
	// Wrong count.
	if err := r.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es2t: 1}); err == nil {
		t.Fatal("SetRatios with wrong edge set should fail")
	}
	// Bad sum.
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	if err := r.SetRatios(ids["t"], ids["s1"], map[graph.EdgeID]float64{es1s2: 0.9, es1v: 0.9}); err == nil {
		t.Fatal("SetRatios with sum 1.8 should fail")
	}
}

func TestFromFlows(t *testing.T) {
	g, ids, dags := paperExample(t)
	d := dags[ids["t"]]
	flows := make([]float64, g.NumEdges())
	es1s2, _ := g.FindEdge(ids["s1"], ids["s2"])
	es1v, _ := g.FindEdge(ids["s1"], ids["v"])
	flows[es1s2] = 3
	flows[es1v] = 1
	phi, err := FromFlows(g, d, flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[es1s2]-0.75) > 1e-9 || math.Abs(phi[es1v]-0.25) > 1e-9 {
		t.Fatalf("ratios %g/%g, want 0.75/0.25", phi[es1s2], phi[es1v])
	}
	// Fallback: s2 had no flow → uniform over its DAG out-edges.
	sum := 0.0
	for _, id := range d.OutEdges(g, ids["s2"]) {
		sum += phi[id]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fallback ratios at s2 sum to %g", sum)
	}
}

func TestFromFlowsRejectsOffDAGFlow(t *testing.T) {
	g, ids, dags := paperExample(t)
	d := dags[ids["t"]]
	flows := make([]float64, g.NumEdges())
	// Find an edge not in the DAG (e.g. t -> v).
	etv, ok := g.FindEdge(ids["t"], ids["v"])
	if !ok {
		t.Fatal("missing edge t->v")
	}
	flows[etv] = 1
	if _, err := FromFlows(g, d, flows); err == nil {
		t.Fatal("FromFlows should reject flow outside the DAG")
	}
}

func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		g.AddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddLink(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*9, 1+float64(rng.Intn(4)))
		}
	}
	return g
}

// Property: under any uniform routing on augmented DAGs, all demand reaches
// its destination (total inflow at t equals total demand toward t) and link
// loads are non-negative.
func TestPropertyDemandConservation(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%10)
		g := randomGraph(rng, n)
		dags := dagx.BuildAll(g, dagx.Augmented)
		r := Uniform(g, dags)
		if r.Validate() != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			s := graph.NodeID(rng.Intn(n))
			tt := graph.NodeID(rng.Intn(n))
			if s == tt {
				continue
			}
			frac := r.SourceFractions(s, tt)
			if math.Abs(frac[tt]-1) > 1e-6 {
				return false
			}
		}
		D := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					D.Set(graph.NodeID(i), graph.NodeID(j), rng.Float64()*5)
				}
			}
		}
		for _, l := range r.LinkLoads(D) {
			if l < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: link loads are linear in the demand matrix.
func TestPropertyLoadLinearity(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%8)
		g := randomGraph(rng, n)
		dags := dagx.BuildAll(g, dagx.Augmented)
		r := Uniform(g, dags)
		D := demand.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					D.Set(graph.NodeID(i), graph.NodeID(j), rng.Float64()*5)
				}
			}
		}
		k := 1 + rng.Float64()*3
		l1 := r.LinkLoads(D)
		l2 := r.LinkLoads(D.Clone().Scale(k))
		for e := range l1 {
			if math.Abs(l2[e]-k*l1[e]) > 1e-6*(1+l1[e]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExportDeterministicAndComplete(t *testing.T) {
	g, ids, dags := paperExample(t)
	r := Uniform(g, dags)
	entries := r.Export()
	if len(entries) == 0 {
		t.Fatal("no FIB entries exported")
	}
	// Fractions at each (router, destination) sum to 1.
	sums := map[[2]string]float64{}
	for _, e := range entries {
		if e.Fraction <= 0 || e.Fraction > 1+1e-9 {
			t.Fatalf("bad fraction %g", e.Fraction)
		}
		sums[[2]string{e.Router, e.Destination}] += e.Fraction
	}
	for k, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("fractions at %v sum to %g", k, s)
		}
	}
	// Deterministic ordering.
	again := r.Export()
	for i := range entries {
		if entries[i] != again[i] {
			t.Fatal("Export not deterministic")
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []FIBEntry
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != len(entries) {
		t.Fatal("JSON round trip lost entries")
	}
	_ = ids
}
