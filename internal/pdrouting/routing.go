// Package pdrouting implements the per-destination (PD) routing model of
// §III of the paper: a routing configuration φ assigns, for every
// destination t and DAG edge e = (u, v), the fraction φ_t(e) of the
// destination-t flow entering u that is forwarded on e. Flow fractions
// f_st(v) and link loads follow by propagation in topological order.
package pdrouting

import (
	"fmt"
	"math"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/par"
)

// ratioTol is the tolerance for splitting-ratio normalization checks.
const ratioTol = 1e-6

// Routing is a complete PD routing: one forwarding DAG and one
// splitting-ratio vector per destination.
type Routing struct {
	G    *graph.Graph
	DAGs []*dagx.DAG // indexed by destination node
	Phi  [][]float64 // Phi[t][e]: splitting ratio of edge e toward destination t
}

// Uniform builds the ECMP-style routing that splits equally among each
// node's DAG out-edges (Fig. 1b when applied to shortest-path DAGs).
func Uniform(g *graph.Graph, dags []*dagx.DAG) *Routing {
	r := &Routing{G: g, DAGs: dags, Phi: make([][]float64, len(dags))}
	for t, d := range dags {
		phi := make([]float64, g.NumEdges())
		for u := 0; u < g.NumNodes(); u++ {
			if graph.NodeID(u) == d.Dst {
				continue
			}
			out := d.OutEdges(g, graph.NodeID(u))
			if len(out) == 0 {
				continue
			}
			share := 1 / float64(len(out))
			for _, id := range out {
				phi[id] = share
			}
		}
		r.Phi[t] = phi
	}
	return r
}

// NewZero builds a routing with all-zero ratios (to be filled via SetRatios
// or direct assignment).
func NewZero(g *graph.Graph, dags []*dagx.DAG) *Routing {
	r := &Routing{G: g, DAGs: dags, Phi: make([][]float64, len(dags))}
	for t := range dags {
		r.Phi[t] = make([]float64, g.NumEdges())
	}
	return r
}

// Clone deep-copies the routing (sharing the graph and DAGs, which are
// immutable by convention).
func (r *Routing) Clone() *Routing {
	c := &Routing{G: r.G, DAGs: r.DAGs, Phi: make([][]float64, len(r.Phi))}
	for t := range r.Phi {
		c.Phi[t] = append([]float64(nil), r.Phi[t]...)
	}
	return c
}

// SetRatios assigns node u's splitting ratios toward destination t. The
// ratios must cover exactly u's DAG out-edges and sum to 1.
func (r *Routing) SetRatios(t graph.NodeID, u graph.NodeID, ratios map[graph.EdgeID]float64) error {
	d := r.DAGs[t]
	out := d.OutEdges(r.G, u)
	if len(out) != len(ratios) {
		return fmt.Errorf("pdrouting: node %d has %d DAG out-edges toward %d, got %d ratios", u, len(out), t, len(ratios))
	}
	sum := 0.0
	for _, id := range out {
		v, ok := ratios[id]
		if !ok {
			return fmt.Errorf("pdrouting: missing ratio for edge %d", id)
		}
		if v < -ratioTol {
			return fmt.Errorf("pdrouting: negative ratio %g on edge %d", v, id)
		}
		sum += v
	}
	if math.Abs(sum-1) > ratioTol {
		return fmt.Errorf("pdrouting: ratios at node %d toward %d sum to %g", u, t, sum)
	}
	for id, v := range ratios {
		r.Phi[t][id] = v
	}
	return nil
}

// Validate checks the PD-routing invariants of §III: ratios are
// non-negative, vanish outside the DAG, and sum to one at every
// non-destination node that has DAG out-edges.
func (r *Routing) Validate() error {
	for t, d := range r.DAGs {
		phi := r.Phi[t]
		for e, v := range phi {
			if v < -ratioTol {
				return fmt.Errorf("pdrouting: negative ratio %g (dest %d, edge %d)", v, t, e)
			}
			if !d.Member[e] && v > ratioTol {
				return fmt.Errorf("pdrouting: ratio %g on non-DAG edge %d (dest %d)", v, e, t)
			}
		}
		for u := 0; u < r.G.NumNodes(); u++ {
			if graph.NodeID(u) == d.Dst {
				continue
			}
			out := d.OutEdges(r.G, graph.NodeID(u))
			if len(out) == 0 {
				continue
			}
			sum := 0.0
			for _, id := range out {
				sum += phi[id]
			}
			if math.Abs(sum-1) > ratioTol {
				return fmt.Errorf("pdrouting: ratios at node %d toward %d sum to %g", u, t, sum)
			}
		}
	}
	return nil
}

// DestLoads propagates the per-source demand column toward destination t
// and returns the absolute flow placed on every edge. demandCol[v] is the
// demand from v to t; the destination's own entry is ignored.
func (r *Routing) DestLoads(t graph.NodeID, demandCol []float64) []float64 {
	return r.DestLoadsInto(t, demandCol,
		make([]float64, r.G.NumEdges()), make([]float64, r.G.NumNodes()))
}

// DestLoadsInto is DestLoads with caller-provided scratch, letting hot
// callers (the concurrent evaluator) recycle flow buffers through a pool
// instead of allocating per propagation. loads (len NumEdges) receives the
// result and is returned; inflow (len NumNodes) is overwritten scratch.
// Both must be zeroed on entry.
func (r *Routing) DestLoadsInto(t graph.NodeID, demandCol, loads, inflow []float64) []float64 {
	d := r.DAGs[t]
	phi := r.Phi[t]
	for v, dem := range demandCol {
		if graph.NodeID(v) != t {
			inflow[v] = dem
		}
	}
	for _, u := range d.Order {
		if u == t || inflow[u] == 0 {
			continue
		}
		for _, id := range d.OutEdges(r.G, u) {
			f := inflow[u] * phi[id]
			if f == 0 {
				continue
			}
			loads[id] += f
			inflow[r.G.Edge(id).To] += f
		}
	}
	return loads
}

// LinkLoads returns the total flow on every edge when routing demand matrix
// D (summing the per-destination propagations).
func (r *Routing) LinkLoads(D *demand.Matrix) []float64 {
	loads := make([]float64, r.G.NumEdges())
	for t := 0; t < r.G.NumNodes(); t++ {
		col := D.ToDestination(graph.NodeID(t))
		any := false
		for _, v := range col {
			if v > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		lt := r.DestLoads(graph.NodeID(t), col)
		for e := range loads {
			loads[e] += lt[e]
		}
	}
	return loads
}

// MaxUtilization returns MxLU(φ, D) = max_e load(e)/c_e (§III).
func (r *Routing) MaxUtilization(D *demand.Matrix) float64 {
	loads := r.LinkLoads(D)
	mx := 0.0
	for e, l := range loads {
		u := l / r.G.Edge(graph.EdgeID(e)).Capacity
		if u > mx {
			mx = u
		}
	}
	return mx
}

// ParallelMaxUtilization is MaxUtilization with the per-destination
// propagations fanned across a worker pool and flow buffers recycled
// through the given pools (edgeBuf sized NumEdges, nodeBuf sized NumNodes).
// Per-destination load vectors land in index-addressed slots and are
// summed serially in destination order before the max, so the value is
// bit-identical to MaxUtilization for any worker count.
func (r *Routing) ParallelMaxUtilization(D *demand.Matrix, workers int, edgeBuf, nodeBuf *par.Pool) float64 {
	n := r.G.NumNodes()
	perDest := make([][]float64, n)
	par.For(workers, n, func(t int) {
		col := D.ToDestination(graph.NodeID(t))
		active := false
		for _, v := range col {
			if v > 0 {
				active = true
				break
			}
		}
		if !active {
			return
		}
		loads := edgeBuf.Get()
		inflow := nodeBuf.Get()
		r.DestLoadsInto(graph.NodeID(t), col, loads, inflow)
		nodeBuf.Put(inflow)
		perDest[t] = loads
	})
	total := edgeBuf.Get()
	defer edgeBuf.Put(total)
	for t := 0; t < n; t++ {
		lt := perDest[t]
		if lt == nil {
			continue
		}
		for e := range total {
			total[e] += lt[e]
		}
		edgeBuf.Put(lt)
	}
	mx := 0.0
	for e, l := range total {
		if u := l / r.G.Edge(graph.EdgeID(e)).Capacity; u > mx {
			mx = u
		}
	}
	return mx
}

// SourceFractions returns f_st(v) for all v: the fraction of the s→t demand
// entering each vertex (§III), computed by propagating a unit of flow from
// s toward t.
func (r *Routing) SourceFractions(s, t graph.NodeID) []float64 {
	col := make([]float64, r.G.NumNodes())
	col[s] = 1
	d := r.DAGs[t]
	phi := r.Phi[t]
	inflow := make([]float64, r.G.NumNodes())
	inflow[s] = 1
	for _, u := range d.Order {
		if u == t || inflow[u] == 0 {
			continue
		}
		for _, id := range d.OutEdges(r.G, u) {
			f := inflow[u] * phi[id]
			inflow[r.G.Edge(id).To] += f
		}
	}
	return inflow
}

// ExpectedHops returns the expected path length, in hops, of s→t traffic:
// Σ_e f_st(tail(e))·φ_t(e). Fig. 11's stretch metric divides this by the
// ECMP expected hop count.
func (r *Routing) ExpectedHops(s, t graph.NodeID) float64 {
	if s == t {
		return 0
	}
	d := r.DAGs[t]
	phi := r.Phi[t]
	inflow := make([]float64, r.G.NumNodes())
	inflow[s] = 1
	hops := 0.0
	for _, u := range d.Order {
		if u == t || inflow[u] == 0 {
			continue
		}
		for _, id := range d.OutEdges(r.G, u) {
			f := inflow[u] * phi[id]
			hops += f
			inflow[r.G.Edge(id).To] += f
		}
	}
	return hops
}

// LoadCoeffs returns, for destination t, the coefficient matrix
// C[s][e] = f_st(tail(e))·φ_t(e): the load that one unit of s→t demand
// places on edge e. The worst-case-demand adversary exploits the linearity
// load_t(e, D) = Σ_s d_st·C[s][e].
func (r *Routing) LoadCoeffs(t graph.NodeID) [][]float64 {
	n := r.G.NumNodes()
	C := make([][]float64, n)
	d := r.DAGs[t]
	phi := r.Phi[t]
	for s := 0; s < n; s++ {
		C[s] = make([]float64, r.G.NumEdges())
		if graph.NodeID(s) == t {
			continue
		}
		inflow := make([]float64, n)
		inflow[s] = 1
		for _, u := range d.Order {
			if u == t || inflow[u] == 0 {
				continue
			}
			for _, id := range d.OutEdges(r.G, u) {
				f := inflow[u] * phi[id]
				C[s][id] = f
				inflow[r.G.Edge(id).To] += f
			}
		}
	}
	return C
}

// FromFlows converts a per-destination flow vector (absolute flow on each
// edge, supported on the DAG) into splitting ratios. Nodes with zero
// outgoing flow fall back to a uniform split over their DAG out-edges so
// the routing stays total. The flow's support must lie within the DAG.
func FromFlows(g *graph.Graph, d *dagx.DAG, flows []float64) ([]float64, error) {
	phi := make([]float64, g.NumEdges())
	for e, f := range flows {
		if f > 1e-12 && !d.Member[e] {
			return nil, fmt.Errorf("pdrouting: flow %g on edge %d outside the DAG", f, e)
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		if graph.NodeID(u) == d.Dst {
			continue
		}
		out := d.OutEdges(g, graph.NodeID(u))
		if len(out) == 0 {
			continue
		}
		total := 0.0
		for _, id := range out {
			total += flows[id]
		}
		if total > 1e-12 {
			for _, id := range out {
				phi[id] = flows[id] / total
			}
		} else {
			share := 1 / float64(len(out))
			for _, id := range out {
				phi[id] = share
			}
		}
	}
	return phi, nil
}
