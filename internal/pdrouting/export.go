package pdrouting

import (
	"encoding/json"
	"io"
	"sort"

	"github.com/coyote-te/coyote/internal/graph"
)

// FIBEntry is one forwarding entry in the exported configuration: at
// Router, traffic toward Destination forwards the given Fraction via
// NextHop.
type FIBEntry struct {
	Router      string  `json:"router"`
	Destination string  `json:"destination"`
	NextHop     string  `json:"next_hop"`
	Fraction    float64 `json:"fraction"`
}

// Export flattens the routing into deterministic FIB entries (sorted by
// destination, router, next-hop), skipping zero ratios.
func (r *Routing) Export() []FIBEntry {
	var out []FIBEntry
	for t := range r.DAGs {
		phi := r.Phi[t]
		for u := 0; u < r.G.NumNodes(); u++ {
			if u == t {
				continue
			}
			for _, id := range r.DAGs[t].OutEdges(r.G, graph.NodeID(u)) {
				if phi[id] <= 0 {
					continue
				}
				e := r.G.Edge(id)
				out = append(out, FIBEntry{
					Router:      r.G.Name(e.From),
					Destination: r.G.Name(graph.NodeID(t)),
					NextHop:     r.G.Name(e.To),
					Fraction:    phi[id],
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Destination != b.Destination {
			return a.Destination < b.Destination
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		return a.NextHop < b.NextHop
	})
	return out
}

// WriteJSON emits the exported configuration as indented JSON.
func (r *Routing) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}
