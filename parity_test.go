// Serial-vs-parallel parity of the public pipeline: for a fixed Seed the
// computed configuration — Perf, ECMPPerf, and every splitting ratio — must
// be bit-identical no matter how many workers the evaluation engine uses
// (DESIGN.md §4's determinism contract, enforced end-to-end).
package coyote_test

import (
	"testing"

	coyote "github.com/coyote-te/coyote"
)

func computeWith(t *testing.T, name string, workers int) *coyote.Config {
	t.Helper()
	topo, err := coyote.LoadTopology(name)
	if err != nil {
		t.Fatal(err)
	}
	bounds := coyote.MarginBounds(coyote.GravityDemands(topo, 1), 2)
	cfg, err := coyote.New(topo, bounds, coyote.Options{
		OptimizerIters:   80,
		AdversarialIters: 2,
		Samples:          3,
		Seed:             11,
		Workers:          workers,
	}).Compute()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestComputeWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep in -short mode")
	}
	for _, name := range []string{"NSF", "Abilene", "Germany"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := computeWith(t, name, 1)
			for _, workers := range []int{4} {
				par := computeWith(t, name, workers)
				if par.Perf != serial.Perf {
					t.Errorf("workers=%d: Perf %v != serial %v", workers, par.Perf, serial.Perf)
				}
				if par.ECMPPerf != serial.ECMPPerf {
					t.Errorf("workers=%d: ECMPPerf %v != serial %v", workers, par.ECMPPerf, serial.ECMPPerf)
				}
				for dst := range serial.Routing.Phi {
					for e := range serial.Routing.Phi[dst] {
						if par.Routing.Phi[dst][e] != serial.Routing.Phi[dst][e] {
							t.Fatalf("workers=%d: Phi[%d][%d] = %v, serial %v", workers, dst, e,
								par.Routing.Phi[dst][e], serial.Routing.Phi[dst][e])
						}
					}
				}
			}
		})
	}
}
