* 2x3 transportation: supplies 20/30, demands 10/25/15, opt 150.
* FREEROW is a non-objective N row: kept free, never binds.
NAME TRANSPORT
ROWS
 N  COST
 N  FREEROW
 L  SUP1
 L  SUP2
 G  DEM1
 G  DEM2
 G  DEM3
COLUMNS
    X11  COST  2
    X11  SUP1  1
    X11  DEM1  1
    X11  FREEROW  1
    X12  COST  3
    X12  SUP1  1
    X12  DEM2  1
    X13  COST  1
    X13  SUP1  1
    X13  DEM3  1
    X21  COST  5
    X21  SUP2  1
    X21  DEM1  1
    X21  FREEROW  1
    X22  COST  4
    X22  SUP2  1
    X22  DEM2  1
    X23  COST  8
    X23  SUP2  1
    X23  DEM3  1
RHS
    RHS  SUP1  20
    RHS  SUP2  30
    RHS  DEM1  10
    RHS  DEM2  25
    RHS  DEM3  15
ENDATA
