* Free variable (FR): min x + 2y, x free with x >= -5 as a row, opt 2.
NAME FREEVAR
ROWS
 N  COST
 G  SUM
 G  FLOOR
COLUMNS
    X  COST  1
    X  SUM  1
    X  FLOOR  1
    Y  COST  2
    Y  SUM  1
RHS
    RHS  SUM  2
    RHS  FLOOR  -5
BOUNDS
    FR  BND  X
ENDATA
