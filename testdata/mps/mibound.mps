* MI bound (lower open): min x + y, x in (-inf, 5], opt -3.
NAME MIBOUND
ROWS
 N  COST
 G  SUM
 G  DIFF
COLUMNS
    X  COST  1
    X  SUM  1
    X  DIFF  1
    Y  COST  1
    Y  SUM  1
    Y  DIFF  -1
RHS
    RHS  SUM  -3
    RHS  DIFF  -8
BOUNDS
    MI  BND  X
    UP  BND  X  5
    UP  BND  Y  10
ENDATA
