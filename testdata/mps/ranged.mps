* Ranged row via RANGES: 1 <= x+y <= 3, x-y = 0.5, min x+2y, opt 1.25.
NAME RANGED
ROWS
 N  COST
 L  SUM
 E  DIFF
COLUMNS
    X  COST  1
    X  SUM  1
    X  DIFF  1
    Y  COST  2
    Y  SUM  1
    Y  DIFF  -1
RHS
    RHS  SUM  3
    RHS  DIFF  0.5
RANGES
    RNG  SUM  2
BOUNDS
    UP  BND  X  2
    UP  BND  Y  2
ENDATA
