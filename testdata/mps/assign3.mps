* 3x3 assignment relaxation (integral by total unimodularity), opt 5.
NAME ASSIGN3
ROWS
 N  COST
 E  ROW1
 E  ROW2
 E  ROW3
 E  COL1
 E  COL2
 E  COL3
COLUMNS
    X11  COST  4
    X11  ROW1  1
    X11  COL1  1
    X12  COST  1
    X12  ROW1  1
    X12  COL2  1
    X13  COST  3
    X13  ROW1  1
    X13  COL3  1
    X21  COST  2
    X21  ROW2  1
    X21  COL1  1
    X22  COST  0
    X22  ROW2  1
    X22  COL2  1
    X23  COST  5
    X23  ROW2  1
    X23  COL3  1
    X31  COST  3
    X31  ROW3  1
    X31  COL1  1
    X32  COST  2
    X32  ROW3  1
    X32  COL2  1
    X33  COST  2
    X33  ROW3  1
    X33  COL3  1
RHS
    RHS  ROW1  1
    RHS  ROW2  1
    RHS  ROW3  1
    RHS  COL1  1
    RHS  COL2  1
    RHS  COL3  1
ENDATA
