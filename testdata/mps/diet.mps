* Two-food diet: min 0.6a + 0.35b over three nutrient floors, opt 2.25.
NAME DIET
ROWS
 N  COST
 G  NUTR1
 G  NUTR2
 G  NUTR3
COLUMNS
    FOODA  COST  0.6
    FOODA  NUTR1  5
    FOODA  NUTR2  4
    FOODA  NUTR3  2
    FOODB  COST  0.35
    FOODB  NUTR1  7
    FOODB  NUTR2  2
    FOODB  NUTR3  1
RHS
    RHS  NUTR1  8
    RHS  NUTR2  15
    RHS  NUTR3  3
ENDATA
