* Product-mix classic: max 3x + 5y, opt 36 at (2, 6).
NAME PRODMIX
OBJSENSE
    MAX
ROWS
 N  COST
 L  PLANT1
 L  PLANT2
 L  PLANT3
COLUMNS
    X  COST  3
    X  PLANT1  1
    X  PLANT3  3
    Y  COST  5
    Y  PLANT2  2
    Y  PLANT3  2
RHS
    RHS  PLANT1  4
    RHS  PLANT2  12
    RHS  PLANT3  18
ENDATA
