* OBJSENSE MAX with objective constant: max 2x + 3y + 10, opt 21.
* The RHS entry on COST is the negated offset, the usual MPS convention.
NAME OFFSETMAX
OBJSENSE
    MAX
ROWS
 N  COST
 L  CAP
COLUMNS
    X  COST  2
    X  CAP  1
    Y  COST  3
    Y  CAP  1
RHS
    RHS  CAP  4
    RHS  COST  -10
BOUNDS
    UP  BND  X  3
    UP  BND  Y  3
ENDATA
