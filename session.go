package coyote

import (
	"errors"

	"github.com/coyote-te/coyote/internal/delta"
)

// This file is the public face of the online TE controller
// (internal/delta): a long-lived Session whose configuration evolves with
// the network — demand-box updates warm-start the optimizer from the
// previous log-ratio/Adam state and carry over the adversary's critical
// matrices; link failures swap in precomputed failover configurations and
// refine; and lie synthesis emits minimal, verified LSA diffs so
// reconfiguration churn is a measured quantity. cmd/coyote-serve exposes
// the same machinery over HTTP.

// Session is a long-lived COYOTE controller over one topology. Unlike
// Engine.Compute — one cold batch optimization per call — a Session
// recomputes incrementally as the demand uncertainty set drifts and links
// fail or recover. It is safe for concurrent use; for a fixed Seed and a
// fixed mutation sequence, results are bit-identical for any
// Options.Workers value.
type Session struct {
	s *delta.Session
}

// RecomputeEvent describes one Session transition: what changed, whether
// the recompute was warm, the resulting worst-case performance, the
// adversarial effort spent, and (for lie emissions) the LSA churn.
type RecomputeEvent = delta.Event

// NewSession validates the topology and bounds, runs the initial cold
// computation, and returns a live session. Options are interpreted as for
// New/Compute; warm recomputes derive reduced iteration counts from them.
// LocalSearchWeights is not supported for sessions (weights must stay
// fixed so DAGs remain comparable across recomputes).
func NewSession(t *Topology, bounds *Bounds, opts ...Options) (*Session, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.LocalSearchWeights {
		return nil, errors.New("coyote: LocalSearchWeights is not supported for sessions (weights must stay fixed across recomputes)")
	}
	s, err := delta.NewSession(t.g, bounds, delta.Config{
		OptIters:           o.OptimizerIters,
		AdvIters:           o.AdversarialIters,
		Samples:            o.Samples,
		Eps:                o.Eps,
		Seed:               o.Seed,
		Workers:            o.Workers,
		PrecomputeFailover: o.PrecomputeFailover,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Config snapshots the session's current configuration in the same shape
// Compute returns.
func (s *Session) Config() *Config {
	g := s.s.Graph()
	return &Config{
		Routing:  s.s.Routing(),
		Perf:     s.s.Perf(),
		ECMPPerf: s.s.ECMPPerf(),
		Weights:  g.Weights(),
		topo:     &Topology{g: g},
	}
}

// UpdateBounds replaces the demand uncertainty set and recomputes with a
// warm start: the splitting optimizer resumes from its previous state, the
// adversary's accumulated critical matrices carry over, and OPTDAG
// normalizations already computed for these DAGs are reused.
func (s *Session) UpdateBounds(bounds *Bounds) (RecomputeEvent, error) {
	return s.s.UpdateBounds(bounds)
}

// Fail marks a link (an EdgeID of this session's topology; either
// direction of a bidirectional pair) as failed and recomputes on the
// surviving topology. Failures that would partition the network are
// rejected and leave the session unchanged.
func (s *Session) Fail(link EdgeID) (RecomputeEvent, error) {
	return s.s.Fail(link)
}

// Recover clears a failed link and recomputes; recovering the last failure
// warm-starts from the most recent intact-topology state.
func (s *Session) Recover(link EdgeID) (RecomputeEvent, error) {
	return s.s.Recover(link)
}

// FailedLinks lists the currently failed links.
func (s *Session) FailedLinks() []EdgeID { return s.s.FailedLinks() }

// Events returns the session's transition log — the controller's
// warm-vs-cold cost and churn statistics.
func (s *Session) Events() []RecomputeEvent { return s.s.Events() }

// LieUpdate is a verified lie configuration for the session's current
// state plus the minimal LSA delta against the previously emitted one.
type LieUpdate struct {
	LieSet
	// Added/Removed/Updated count the LSAs a Fibbing controller must
	// inject, withdraw, or re-advertise to move from the previously
	// emitted lie set to this one. The first emission is a full injection.
	Added, Removed, Updated int
}

// Churn is the total number of LSAs touched by this update — the
// session's reconfiguration cost metric.
func (u *LieUpdate) Churn() int { return u.Added + u.Removed + u.Updated }

// Lies synthesizes and verifies the lie set realizing the current
// configuration (as Config.Lies) and diffs it against the session's
// previously emitted lie set; the diff itself is verified to reproduce the
// new forwarding exactly when applied on top of the old lie set.
func (s *Session) Lies(extraPerInterface int) (*LieUpdate, error) {
	res, err := s.s.Lies(extraPerInterface)
	if err != nil {
		return nil, err
	}
	return &LieUpdate{
		LieSet: LieSet{
			Quantized:        res.Quantized,
			VirtualLinks:     res.VirtualLinks,
			FakeNodes:        res.FakeNodes,
			LiedDestinations: res.LiedDestinations,
			synthesis:        res.Synthesis,
			topo:             &Topology{g: s.s.Graph()},
		},
		Added:   len(res.Diff.Add),
		Removed: len(res.Diff.Remove),
		Updated: len(res.Diff.Update),
	}, nil
}
