// Command coyote-eval regenerates the tables and figures of the paper's
// evaluation (§VI, §VII) plus the negative-result demonstrations and
// ablations. Experiment IDs follow DESIGN.md §3.
//
// Usage:
//
//	coyote-eval -list
//	coyote-eval -run fig6
//	coyote-eval -run table1 -quick
//	coyote-eval -all
//	coyote-eval -topo-file net.graphml -demand hotspot
//
// -topo-file margin-sweeps an arbitrary topology file (text, GraphML, or
// SNDlib native) through the evaluator, outside the registered
// experiments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	coyote "github.com/coyote-te/coyote"
	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/lp"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/strategy"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiment IDs, corpus topologies, and scenario generators")
		run      = flag.String("run", "", "experiment ID to run")
		all      = flag.Bool("all", false, "run every experiment")
		topoFile = flag.String("topo-file", "", "margin-sweep this topology file (text/GraphML/SNDlib) instead of a registered experiment")
		model    = flag.String("demand", "gravity", "demand model for -topo-file sweeps")
		quick    = flag.Bool("quick", false, "use the reduced (smoke-test) configuration")
		strats   = flag.String("strategy", "", "comma-separated strategy subset for the portfolio experiments (default: all; see -list)")
		workers  = flag.Int("workers", 0, "worker-pool size for the evaluation engine (0 = one per CPU; results are identical for any value)")
		lpStats  = flag.Bool("lp-stats", false, "print sparse-LP solver statistics (iterations, refactorizations, warm-start and dual-restart hit rates, presolve reductions) after each run")
		metrics  = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text) to stderr before exiting")
		traceOut = flag.String("trace", "", "write a per-experiment span trace here (.jsonl = span records, else Chrome trace-event JSON)")
	)
	flag.Parse()
	printLPStats = *lpStats
	// SIGINT/SIGTERM stop between experiments (the in-flight experiment
	// finishes) and return through main, so the deferred trace flush and
	// metrics dump still run — an interrupted -all leaves a loadable trace.
	interruptCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *traceOut != "" {
		tracer := obs.NewTracer()
		traceCtx = obs.WithTracer(context.Background(), tracer)
		defer func() {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "coyote-eval:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %d trace spans to %s\n", tracer.Len(), *traceOut)
			}
		}()
	}
	if *metrics {
		defer obs.Default.WriteProm(os.Stderr)
	}

	if *list {
		printList()
		return
	}
	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.Workers = *workers
	if *strats != "" {
		for _, name := range strings.Split(*strats, ",") {
			name = strings.TrimSpace(name)
			if _, err := strategy.New(name, strategy.Config{}); err != nil {
				fatal(err)
			}
			cfg.Strategies = append(cfg.Strategies, name)
		}
	}
	switch {
	case *all:
		for _, id := range exp.IDs() {
			if interruptCtx.Err() != nil {
				fmt.Fprintln(os.Stderr, "coyote-eval: interrupted; skipping remaining experiments")
				break
			}
			if err := runOne(id, cfg); err != nil {
				fatal(err)
			}
		}
	case *topoFile != "":
		g, err := scen.ReadFile(*topoFile)
		if err != nil {
			fatal(err)
		}
		lp.ResetGlobalStats()
		ctx, span := obs.StartSpan(traceCtx, "sweep:"+*topoFile)
		cfg.Ctx = ctx
		tab, err := exp.SweepGraph(fmt.Sprintf("Sweep — %s", *topoFile), g, *model, cfg)
		span.End()
		if err != nil {
			fatal(err)
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		reportLPStats(fmt.Sprintf("sweep %s", *topoFile))
	case *run != "":
		if err := runOne(*run, cfg); err != nil {
			if errors.Is(err, exp.ErrUnknownID) {
				fmt.Fprintf(os.Stderr, "coyote-eval: %v\n", err)
				fmt.Fprintln(os.Stderr, "coyote-eval: use -list to print the experiment IDs")
				os.Exit(2)
			}
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "coyote-eval: -run <id>, -all, -topo-file or -list required")
		flag.Usage()
		os.Exit(2)
	}
}

// printList answers -list: the experiment registry plus everything the
// scenario engine can feed it.
func printList() {
	fmt.Println("experiments (-run):")
	for _, id := range exp.IDs() {
		fmt.Printf("  %s\n", id)
	}
	fmt.Println("\nTE strategies (-strategy, portfolio experiments):")
	for _, name := range strategy.Names() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("\ncorpus topologies (cmd/coyote -topo):")
	for _, name := range coyote.TopologyNames() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("\nscenario generators (coyote-scen generate -gen):")
	for _, g := range coyote.ScenarioGenerators() {
		fmt.Printf("  %-8s %s\n", g.Name, g.Desc)
	}
}

// traceCtx carries the -trace tracer into every experiment; a plain
// background context when tracing is off.
var traceCtx = context.Background()

func runOne(id string, cfg exp.Config) error {
	start := time.Now()
	lp.ResetGlobalStats()
	ctx, span := obs.StartSpan(traceCtx, "exp:"+id)
	cfg.Ctx = ctx
	tab, err := exp.Run(id, cfg)
	span.End()
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	if _, err := tab.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	reportLPStats(id)
	return nil
}

// printLPStats mirrors the -lp-stats flag for reportLPStats.
var printLPStats bool

// reportLPStats prints the per-run counters of the sparse LP core: how
// many simplex solves the run triggered, the iteration/refactorization
// totals, and how often a warm-start basis was offered and accepted
// (PerfExact's per-link chain, the evaluator's carried OPTDAG basis).
func reportLPStats(run string) {
	if !printLPStats {
		return
	}
	st := lp.GlobalStats()
	fmt.Printf("[lp-stats %s] solves=%d iterations=%d phase1=%d dual=%d refactorizations=%d warm=%d/%d (hit rate %.0f%%) dual-restarts=%d/%d (hit rate %.0f%%) presolve=%d solves (-%d rows, -%d cols) dense-fallbacks=%d\n\n",
		run, st.Solves, st.Iterations, st.Phase1Iterations, st.DualIterations, st.Refactorizations,
		st.WarmHits, st.WarmAttempts, 100*st.WarmHitRate(),
		st.DualHits, st.DualAttempts, 100*st.DualHitRate(),
		st.PresolveSolves, st.PresolveRows, st.PresolveCols, st.DenseFallbacks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote-eval:", err)
	os.Exit(1)
}
