// Command coyote-topo lists and exports the built-in topology corpus (the
// synthetic Internet-Topology-Zoo stand-ins of the evaluation).
//
// Usage:
//
//	coyote-topo -list
//	coyote-topo -name Geant            # text format on stdout
//	coyote-topo -name Geant -dot       # Graphviz
package main

import (
	"flag"
	"fmt"
	"os"

	coyote "github.com/coyote-te/coyote"
)

func main() {
	var (
		list = flag.Bool("list", false, "list corpus topology names")
		name = flag.String("name", "", "topology to export")
		dot  = flag.Bool("dot", false, "emit Graphviz DOT instead of text format")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range coyote.TopologyNames() {
			t, err := coyote.LoadTopology(n)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-14s %3d nodes  %3d links\n", n, t.NumNodes(), t.NumLinks()/2)
		}
	case *name != "":
		t, err := coyote.LoadTopology(*name)
		if err != nil {
			fatal(err)
		}
		if *dot {
			err = t.WriteDOT(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "coyote-topo: -list or -name required")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote-topo:", err)
	os.Exit(1)
}
