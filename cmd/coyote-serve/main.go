// Command coyote-serve runs the online TE controller: a long-lived COYOTE
// session behind an HTTP/JSON API (internal/serve). Point it at a corpus
// topology, a real topology file (GraphML / SNDlib / text), or a generated
// scenario, then drive it with demand updates and failure events; every
// mutation recomputes incrementally (warm-started optimization,
// critical-matrix carry-over, failover swap-and-refine) and the lie
// endpoint reports reconfiguration churn as minimal LSA diffs.
//
// Usage:
//
//	coyote-serve -topo Geant -margin 2
//	coyote-serve -topo-file Geant.graphml -demand hotspot -addr :8080
//	coyote-serve -gen waxman -n 20 -seed 7 -quick -failover
//
// Then, from another terminal:
//
//	curl localhost:8080/state
//	curl -X POST localhost:8080/update  -d '{"scale":1.3}'
//	curl -X POST localhost:8080/fail    -d '{"from":"v0","to":"v1"}'
//	curl localhost:8080/lies?extra=3
//	curl -X POST localhost:8080/recover -d '{"from":"v0","to":"v1"}'
//	curl localhost:8080/stats
//	curl -N localhost:8080/events        # live SSE stream
//	curl localhost:8080/metrics          # Prometheus text exposition
//	curl localhost:8080/fleet            # sharded-sweep campaign status
//	open http://localhost:8080/dashboard # live HTML control room
//
// The fleet control room (DESIGN.md §11) is always on: coyote-sweep
// workers launched with -controller post heartbeats and result batches
// here, and /fleet, /fleet/results, /fleet/events, and /dashboard expose
// the merged campaign. With -debug-addr a second listener serves the
// debug plane (net/http/pprof profiles, expvar, /metrics, and the same
// /dashboard). SIGINT/SIGTERM shuts down gracefully: in-flight requests
// drain, SSE streams close, and -trace (if set) flushes the recorded
// session span trees to disk.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/coyote-te/coyote/internal/delta"
	"github.com/coyote-te/coyote/internal/demand"
	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/scen"
	"github.com/coyote-te/coyote/internal/serve"
	"github.com/coyote-te/coyote/internal/sweep"
	"github.com/coyote-te/coyote/internal/topo"
)

func main() {
	topoName := flag.String("topo", "", "corpus topology name (see 'coyote-scen list')")
	topoFile := flag.String("topo-file", "", "topology file (GraphML, SNDlib native, or text)")
	gen := flag.String("gen", "", "generator name (waxman, ba, fattree, grid, ring)")
	n := flag.Int("n", 20, "node count (waxman, ba, ring)")
	k := flag.Int("k", 4, "fat-tree arity")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 5, "grid cols")
	seed := flag.Int64("seed", 1, "generator / optimizer seed")
	model := flag.String("demand", "gravity", "base demand model")
	margin := flag.Float64("margin", 2, "uncertainty margin (≤ 0 for full demand obliviousness)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = one per CPU; results identical for any value)")
	quick := flag.Bool("quick", false, "reduced optimization effort (fast startup)")
	failoverPlan := flag.Bool("failover", false, "precompute per-link failover configurations at startup")
	sweepName := flag.String("sweep", "", "expose the /sweep endpoint for this campaign (golden, quick, full)")
	sweepCache := flag.String("sweep-cache", "", "content-addressed result cache directory for /sweep")
	debugAddr := flag.String("debug-addr", "", "separate listen address for /debug/pprof, /debug/vars, /metrics (off when empty)")
	traceOut := flag.String("trace", "", "write a trace of every session transition to this file on shutdown (.jsonl = span records, else Chrome trace-event JSON)")
	logOut := flag.String("log", "", `structured event log destination (JSONL file, or "-" for stderr)`)
	logLevel := flag.String("log-level", "info", "minimum level for the event log: debug, info, warn, error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalln("coyote-serve:", err)
	}
	obs.SetLogLevel(level)
	switch *logOut {
	case "":
	case "-":
		obs.SetLogOutput(os.Stderr)
	default:
		lf, err := os.Create(*logOut)
		if err != nil {
			log.Fatalln("coyote-serve:", err)
		}
		defer lf.Close()
		obs.SetLogOutput(lf)
	}

	g, name, err := buildTopology(*topoName, *topoFile, *gen, scen.Params{
		N: *n, K: *k, Rows: *rows, Cols: *cols, Seed: *seed,
	})
	if err != nil {
		log.Fatalln("coyote-serve:", err)
	}

	var box *demand.Box
	if *margin <= 0 {
		box = demand.ObliviousBox(g.NumNodes(), 1)
	} else {
		base, err := scen.BaseMatrix(g, *model, 1, *seed)
		if err != nil {
			log.Fatalln("coyote-serve:", err)
		}
		box = demand.MarginBox(base, *margin)
	}

	effort := exp.Default()
	if *quick {
		effort = exp.Quick()
	}
	cfg := delta.Config{
		OptIters:           effort.OptIters,
		AdvIters:           effort.AdvIters,
		Samples:            effort.Samples,
		Eps:                effort.Eps,
		Seed:               *seed,
		Workers:            *workers,
		PrecomputeFailover: *failoverPlan,
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}

	log.Printf("coyote-serve: computing initial configuration for %s (%d nodes, %d links)...",
		name, g.NumNodes(), len(g.Links()))
	start := time.Now()
	ses, err := delta.NewSession(g, box, cfg)
	if err != nil {
		log.Fatalln("coyote-serve:", err)
	}
	log.Printf("coyote-serve: ready in %v — PERF %.3f (ECMP %.3f)",
		time.Since(start).Round(time.Millisecond), ses.Perf(), ses.ECMPPerf())
	srv := serve.New(ses)
	if *sweepName != "" {
		campaign, err := sweep.Named(*sweepName, "")
		if err != nil {
			log.Fatalln("coyote-serve:", err)
		}
		opts := sweep.Options{Workers: *workers}
		if *sweepCache != "" {
			opts.Cache, err = sweep.Open(*sweepCache)
			if err != nil {
				log.Fatalln("coyote-serve:", err)
			}
		}
		srv.EnableSweep(campaign, opts)
		log.Printf("coyote-serve: /sweep enabled for the %s campaign (%d units, cache %q)",
			campaign.Name, len(campaign.Units), *sweepCache)
	}
	// Graceful shutdown: SIGINT/SIGTERM cancels ctx, which (a) stops the
	// listeners accepting and (b) — because ctx is every request's base
	// context — ends long-lived SSE streams (/events), so Shutdown drains
	// in-flight requests instead of deadlocking on them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:        *debugAddr,
			Handler:     obs.DebugMux(obs.Default),
			BaseContext: func(net.Listener) context.Context { return ctx },
		}
		go func() {
			log.Printf("coyote-serve: debug plane on %s (/debug/pprof /debug/vars /metrics /dashboard)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Println("coyote-serve: debug listener:", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	log.Printf("coyote-serve: listening on %s (GET /state /routing /lies /stats /events /metrics /fleet /dashboard; POST /update /fail /recover)", *addr)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalln("coyote-serve:", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Println("coyote-serve: signal received, shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Println("coyote-serve: shutdown:", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			log.Println("coyote-serve: debug shutdown:", err)
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceOut); err != nil {
			log.Println("coyote-serve:", err)
		} else {
			log.Printf("coyote-serve: wrote %d trace spans to %s", tracer.Len(), *traceOut)
		}
	}
}

// buildTopology resolves exactly one of the three topology sources.
func buildTopology(topoName, topoFile, gen string, p scen.Params) (*graph.Graph, string, error) {
	sources := 0
	for _, set := range []bool{topoName != "", topoFile != "", gen != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, "", fmt.Errorf("use only one of -topo, -topo-file, -gen")
	case topoName != "":
		g, err := topo.Load(topoName)
		return g, topoName, err
	case topoFile != "":
		g, err := scen.ReadFile(topoFile)
		return g, topoFile, err
	case gen != "":
		g, err := scen.Generate(gen, p)
		return g, fmt.Sprintf("%s-n%d-seed%d", gen, p.N, p.Seed), err
	default:
		fmt.Fprintln(os.Stderr, "coyote-serve: one of -topo, -topo-file, -gen is required")
		flag.Usage()
		os.Exit(2)
		return nil, "", nil
	}
}
