// Command coyote computes a COYOTE traffic-engineering configuration for a
// topology: per-destination forwarding DAGs, optimized splitting ratios,
// the worst-case (oblivious) performance ratio versus traditional ECMP,
// and optionally the OSPF lie set realizing the configuration.
//
// Usage:
//
//	coyote -list
//	coyote -topo Geant -margin 2.0 [-virtual 3] [-local-search] [-json]
//	coyote -file net.txt -margin 2.5
//	coyote -topo-file Geant.graphml -demand hotspot -margin 2
//
// With -file, the topology is read in the text format of cmd/coyote-topo
// (node/link/edge directives); -topo-file additionally accepts Topology
// Zoo GraphML and SNDlib native files (format detected from extension or
// content). The base demand matrix defaults to the gravity model (§VI-B
// of the paper) and -demand selects any scenario-engine model; -margin x
// bounds every demand within [d/x, d·x], and -margin 0 selects full
// demand obliviousness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	coyote "github.com/coyote-te/coyote"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list corpus topologies, scenario generators, and demand models")
		topoName    = flag.String("topo", "", "corpus topology name (see -list)")
		file        = flag.String("file", "", "topology file in text format (alternative to -topo)")
		topoFile    = flag.String("topo-file", "", "topology file in any supported format: text, GraphML, SNDlib (alternative to -topo)")
		model       = flag.String("demand", "gravity", "base demand model: gravity, bimodal, hotspot, flash, uniform")
		margin      = flag.Float64("margin", 2, "demand uncertainty margin (0 = fully oblivious)")
		virtual     = flag.Int("virtual", 0, "synthesize lies with this many extra virtual next-hops per interface (0 = skip)")
		localSearch = flag.Bool("local-search", false, "optimize OSPF weights with local search first")
		iters       = flag.Int("iters", 500, "optimizer gradient steps")
		advIters    = flag.Int("adv-iters", 5, "adversarial refinement rounds")
		seed        = flag.Int64("seed", 1, "random seed")
		workers     = flag.Int("workers", 0, "worker-pool size for the evaluation engine (0 = one per CPU; results are identical for any value)")
		asJSON      = flag.Bool("json", false, "emit machine-readable JSON")
		fibOut      = flag.String("fib", "", "write the splitting configuration (FIB fractions) as JSON to this file")
		msgOut      = flag.String("messages", "", "write the fake-node LSAs as JSON to this file (requires -virtual)")
	)
	flag.Parse()

	if *list {
		printList()
		return
	}
	topo, err := loadTopology(*topoName, *file, *topoFile)
	if err != nil {
		fatal(err)
	}
	var bounds *coyote.Bounds
	if *margin <= 0 {
		// Fully oblivious: no base demand model is consulted, so report
		// that rather than the (ignored) -demand value.
		*model = "(oblivious)"
		bounds = coyote.ObliviousBounds(topo, 1)
	} else {
		base, err := coyote.BuildDemands(topo, *model, 1, *seed)
		if err != nil {
			fatal(err)
		}
		bounds = coyote.MarginBounds(base, *margin)
	}
	cfg, err := coyote.New(topo, bounds, coyote.Options{
		OptimizerIters:     *iters,
		AdversarialIters:   *advIters,
		LocalSearchWeights: *localSearch,
		Seed:               *seed,
		Workers:            *workers,
	}).Compute()
	if err != nil {
		fatal(err)
	}

	type liesOut struct {
		VirtualNextHops  int `json:"virtual_next_hops"`
		FakeNodes        int `json:"fake_nodes"`
		VirtualLinks     int `json:"virtual_links"`
		LiedDestinations int `json:"lied_destinations"`
	}
	out := struct {
		Topology string   `json:"topology"`
		Demand   string   `json:"demand"`
		Nodes    int      `json:"nodes"`
		Links    int      `json:"links"`
		Margin   float64  `json:"margin"`
		Perf     float64  `json:"coyote_perf"`
		ECMPPerf float64  `json:"ecmp_perf"`
		Gain     float64  `json:"gain"`
		Lies     *liesOut `json:"lies,omitempty"`
	}{
		Topology: displayName(*topoName, *file, *topoFile),
		Demand:   *model,
		Nodes:    topo.NumNodes(),
		Links:    topo.NumLinks() / 2,
		Margin:   *margin,
		Perf:     cfg.Perf,
		ECMPPerf: cfg.ECMPPerf,
		Gain:     cfg.ECMPPerf / cfg.Perf,
	}
	if *fibOut != "" {
		f, err := os.Create(*fibOut)
		if err != nil {
			fatal(err)
		}
		if err := cfg.Routing.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *virtual > 0 {
		lies, err := cfg.Lies(*virtual)
		if err != nil {
			fatal(err)
		}
		out.Lies = &liesOut{
			VirtualNextHops:  *virtual,
			FakeNodes:        lies.FakeNodes,
			VirtualLinks:     lies.VirtualLinks,
			LiedDestinations: lies.LiedDestinations,
		}
		if *msgOut != "" {
			f, err := os.Create(*msgOut)
			if err != nil {
				fatal(err)
			}
			if err := lies.WriteMessages(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("topology        %s (%d nodes, %d links)\n", out.Topology, out.Nodes, out.Links)
	fmt.Printf("demand model    %s\n", out.Demand)
	fmt.Printf("uncertainty     margin %.1f\n", out.Margin)
	fmt.Printf("COYOTE PERF     %.3f\n", out.Perf)
	fmt.Printf("ECMP PERF       %.3f\n", out.ECMPPerf)
	fmt.Printf("improvement     %.0f%%\n", 100*(out.Gain-1))
	if out.Lies != nil {
		fmt.Printf("lies            %d fake nodes, %d virtual links, %d destinations (≤%d extra next-hops/interface)\n",
			out.Lies.FakeNodes, out.Lies.VirtualLinks, out.Lies.LiedDestinations, out.Lies.VirtualNextHops)
	}
}

func loadTopology(name, file, topoFile string) (*coyote.Topology, error) {
	set := 0
	for _, s := range []string{name, file, topoFile} {
		if s != "" {
			set++
		}
	}
	switch {
	case set > 1:
		return nil, fmt.Errorf("coyote: use exactly one of -topo, -file, -topo-file")
	case name != "":
		t, err := coyote.LoadTopology(name)
		if err != nil {
			return nil, fmt.Errorf("%w (use -list for the known topologies and generators)", err)
		}
		return t, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coyote.ReadTopology(f)
	case topoFile != "":
		return coyote.ReadTopologyFile(topoFile)
	default:
		return nil, fmt.Errorf("coyote: -topo, -file or -topo-file is required (try -topo Geant, or -list)")
	}
}

// printList answers -list: everything a -topo / -demand flag accepts,
// plus the scenario generators cmd/coyote-scen builds topologies with.
func printList() {
	fmt.Println("corpus topologies (-topo):")
	for _, name := range coyote.TopologyNames() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("\nscenario generators (coyote-scen generate -gen):")
	for _, g := range coyote.ScenarioGenerators() {
		fmt.Printf("  %-8s %s\n", g.Name, g.Desc)
	}
	fmt.Printf("\ndemand models (-demand): %s\n", strings.Join(coyote.DemandModels(), ", "))
}

func displayName(name, file, topoFile string) string {
	switch {
	case name != "":
		return name
	case file != "":
		return file
	default:
		return topoFile
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote:", err)
	os.Exit(1)
}
