// Command coyote computes a COYOTE traffic-engineering configuration for a
// topology: per-destination forwarding DAGs, optimized splitting ratios,
// the worst-case (oblivious) performance ratio versus traditional ECMP,
// and optionally the OSPF lie set realizing the configuration.
//
// Usage:
//
//	coyote -topo Geant -margin 2.0 [-virtual 3] [-local-search] [-json]
//	coyote -file net.txt -margin 2.5
//
// With -file, the topology is read in the text format of cmd/coyote-topo
// (node/link/edge directives). The base demand matrix is the gravity model
// (§VI-B of the paper); -margin x bounds every demand within [d/x, d·x],
// and -margin 0 selects full demand obliviousness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	coyote "github.com/coyote-te/coyote"
)

func main() {
	var (
		topoName    = flag.String("topo", "", "corpus topology name (see coyote-topo -list)")
		file        = flag.String("file", "", "topology file in text format (alternative to -topo)")
		margin      = flag.Float64("margin", 2, "demand uncertainty margin (0 = fully oblivious)")
		virtual     = flag.Int("virtual", 0, "synthesize lies with this many extra virtual next-hops per interface (0 = skip)")
		localSearch = flag.Bool("local-search", false, "optimize OSPF weights with local search first")
		iters       = flag.Int("iters", 500, "optimizer gradient steps")
		advIters    = flag.Int("adv-iters", 5, "adversarial refinement rounds")
		seed        = flag.Int64("seed", 1, "random seed")
		workers     = flag.Int("workers", 0, "worker-pool size for the evaluation engine (0 = one per CPU; results are identical for any value)")
		asJSON      = flag.Bool("json", false, "emit machine-readable JSON")
		fibOut      = flag.String("fib", "", "write the splitting configuration (FIB fractions) as JSON to this file")
		msgOut      = flag.String("messages", "", "write the fake-node LSAs as JSON to this file (requires -virtual)")
	)
	flag.Parse()

	topo, err := loadTopology(*topoName, *file)
	if err != nil {
		fatal(err)
	}
	base := coyote.GravityDemands(topo, 1)
	var bounds *coyote.Bounds
	if *margin <= 0 {
		bounds = coyote.ObliviousBounds(topo, 1)
	} else {
		bounds = coyote.MarginBounds(base, *margin)
	}
	cfg, err := coyote.New(topo, bounds, coyote.Options{
		OptimizerIters:     *iters,
		AdversarialIters:   *advIters,
		LocalSearchWeights: *localSearch,
		Seed:               *seed,
		Workers:            *workers,
	}).Compute()
	if err != nil {
		fatal(err)
	}

	type liesOut struct {
		VirtualNextHops  int `json:"virtual_next_hops"`
		FakeNodes        int `json:"fake_nodes"`
		VirtualLinks     int `json:"virtual_links"`
		LiedDestinations int `json:"lied_destinations"`
	}
	out := struct {
		Topology string   `json:"topology"`
		Nodes    int      `json:"nodes"`
		Links    int      `json:"links"`
		Margin   float64  `json:"margin"`
		Perf     float64  `json:"coyote_perf"`
		ECMPPerf float64  `json:"ecmp_perf"`
		Gain     float64  `json:"gain"`
		Lies     *liesOut `json:"lies,omitempty"`
	}{
		Topology: displayName(*topoName, *file),
		Nodes:    topo.NumNodes(),
		Links:    topo.NumLinks() / 2,
		Margin:   *margin,
		Perf:     cfg.Perf,
		ECMPPerf: cfg.ECMPPerf,
		Gain:     cfg.ECMPPerf / cfg.Perf,
	}
	if *fibOut != "" {
		f, err := os.Create(*fibOut)
		if err != nil {
			fatal(err)
		}
		if err := cfg.Routing.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *virtual > 0 {
		lies, err := cfg.Lies(*virtual)
		if err != nil {
			fatal(err)
		}
		out.Lies = &liesOut{
			VirtualNextHops:  *virtual,
			FakeNodes:        lies.FakeNodes,
			VirtualLinks:     lies.VirtualLinks,
			LiedDestinations: lies.LiedDestinations,
		}
		if *msgOut != "" {
			f, err := os.Create(*msgOut)
			if err != nil {
				fatal(err)
			}
			if err := lies.WriteMessages(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("topology        %s (%d nodes, %d links)\n", out.Topology, out.Nodes, out.Links)
	fmt.Printf("uncertainty     margin %.1f\n", out.Margin)
	fmt.Printf("COYOTE PERF     %.3f\n", out.Perf)
	fmt.Printf("ECMP PERF       %.3f\n", out.ECMPPerf)
	fmt.Printf("improvement     %.0f%%\n", 100*(out.Gain-1))
	if out.Lies != nil {
		fmt.Printf("lies            %d fake nodes, %d virtual links, %d destinations (≤%d extra next-hops/interface)\n",
			out.Lies.FakeNodes, out.Lies.VirtualLinks, out.Lies.LiedDestinations, out.Lies.VirtualNextHops)
	}
}

func loadTopology(name, file string) (*coyote.Topology, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("coyote: use either -topo or -file, not both")
	case name != "":
		return coyote.LoadTopology(name)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coyote.ReadTopology(f)
	default:
		return nil, fmt.Errorf("coyote: -topo or -file is required (try -topo Geant)")
	}
}

func displayName(name, file string) string {
	if name != "" {
		return name
	}
	return file
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coyote:", err)
	os.Exit(1)
}
