// Command coyote-sweep is the corpus-scale sweep driver (DESIGN.md §8): it
// runs whole evaluation campaigns — every registered experiment × corpus /
// Topology Zoo / SNDlib topology × generated-scenario suite — through the
// content-addressed result cache, shards them across processes, and diffs
// result sets against each other or the golden regression corpus.
//
// Usage:
//
//	coyote-sweep run    -campaign golden -cache .sweep-cache -out run.jsonl -v
//	coyote-sweep run    -campaign quick -shard 0/4 -out shard0.jsonl   # one of four shard processes
//	coyote-sweep run    -campaign quick -shard 0/2 -controller http://localhost:8080 \
//	                    -log shard0.log.jsonl -out shard0.jsonl        # fleet worker: heartbeats +
//	                                                                   # streamed results to coyote-serve
//	coyote-sweep resume -campaign quick -cache .sweep-cache -out run.jsonl
//	coyote-sweep status -campaign quick -cache .sweep-cache
//	coyote-sweep merge  -out merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
//	coyote-sweep diff   a.jsonl b.jsonl
//	coyote-sweep diff   -golden testdata/golden run.jsonl
//
// run and resume are the same engine — the cache is what makes re-runs
// incremental — but resume refuses to start from an empty cache, so a typo
// in -cache fails loudly instead of silently recomputing a whole campaign.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/coyote-te/coyote/internal/obs"
	"github.com/coyote-te/coyote/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = runCmd(args, false)
	case "resume":
		err = runCmd(args, true)
	case "status":
		err = statusCmd(args)
	case "merge":
		err = mergeCmd(args)
	case "diff":
		err = diffCmd(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "coyote-sweep: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coyote-sweep:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `coyote-sweep — corpus-scale sweep harness

subcommands:
  run     run a campaign (through the cache when -cache is set)
  resume  like run, but requires a non-empty cache (resume an interrupted campaign)
  status  report which campaign units are already cached
  merge   merge shard JSONL outputs into canonical campaign order
  diff    compare two JSONL result sets, or one against -golden <dir>

common flags (run/resume/status):
  -campaign golden|quick|full   campaign to enumerate (default quick)
  -topo-dir DIR                 add real topology files to the full campaign
  -cache DIR                    content-addressed result cache
  -fingerprint S                override the code fingerprint in cache keys
run/resume also take:
  -out FILE                     stream results as JSONL (default stdout)
  -shard i/n                    run only units with index ≡ i (mod n)
  -workers N                    unit-level worker pool (0 = one per CPU)
  -verify                       recompute cache hits, fail unless bit-identical
  -v                            per-unit progress on stderr
  -metrics                      dump Prometheus metrics to stderr after the run
  -debug-addr ADDR              serve /debug/pprof, /debug/vars, /metrics, /dashboard while running
  -trace FILE                   per-unit span trace (.jsonl, or Chrome/Perfetto JSON)
  -controller URL               POST heartbeats and streamed results to this coyote-serve
  -hb DURATION                  heartbeat interval (default 2s)
  -log FILE                     structured event log (JSONL; "-" = stderr)
  -log-level LEVEL              debug|info|warn|error (default info)
diff takes:
  -tol X                        numeric tolerance (default 0 = exact)
  -golden DIR                   compare FILE against the golden corpus dir`)
}

// campaignFlags are the flags shared by run/resume/status.
type campaignFlags struct {
	campaign, topoDir, cacheDir, fingerprint string
}

func (cf *campaignFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&cf.campaign, "campaign", "quick", "campaign name: golden, quick, or full")
	fs.StringVar(&cf.topoDir, "topo-dir", "", "directory of real topology files (full campaign)")
	fs.StringVar(&cf.cacheDir, "cache", "", "content-addressed result cache directory")
	fs.StringVar(&cf.fingerprint, "fingerprint", "", "override the code fingerprint in cache keys")
}

func (cf *campaignFlags) load() (sweep.Campaign, *sweep.Cache, error) {
	c, err := sweep.Named(cf.campaign, cf.topoDir)
	if err != nil {
		return sweep.Campaign{}, nil, err
	}
	var cache *sweep.Cache
	if cf.cacheDir != "" {
		cache, err = sweep.Open(cf.cacheDir)
		if err != nil {
			return sweep.Campaign{}, nil, err
		}
	}
	return c, cache, nil
}

func runCmd(args []string, resume bool) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var cf campaignFlags
	cf.register(fs)
	var (
		out       = fs.String("out", "", "write the JSONL result stream here (default stdout)")
		shard     = fs.String("shard", "", "i/n — run only this shard of the campaign")
		workers   = fs.Int("workers", 0, "unit-level worker pool size (0 = one per CPU)")
		verify    = fs.Bool("verify", false, "recompute every cache hit and require bit-identical results")
		verbose   = fs.Bool("v", false, "per-unit progress on stderr")
		metrics   = fs.Bool("metrics", false, "dump the metrics registry (Prometheus text) to stderr after the run")
		debugAddr = fs.String("debug-addr", "", "serve /debug/pprof, /debug/vars, /metrics, /dashboard on this address for the run's duration")
		traceOut  = fs.String("trace", "", "write a per-unit/per-stage trace here (.jsonl = span records, else Chrome trace-event JSON)")
		ctrl      = fs.String("controller", "", "coyote-serve base URL to POST fleet heartbeats and streamed results to")
		hbEvery   = fs.Duration("hb", 2*time.Second, "heartbeat interval for -controller")
		logOut    = fs.String("log", "", `structured event log destination (JSONL file, or "-" for stderr)`)
		logLevel  = fs.String("log-level", "info", "minimum level for the event log: debug, info, warn, error")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("run: unexpected arguments %v", fs.Args())
	}

	c, cache, err := cf.load()
	if err != nil {
		return err
	}
	if resume {
		if cache == nil {
			return fmt.Errorf("resume: -cache is required")
		}
		// Count entries this campaign will actually hit (same units, same
		// config, same code fingerprint) — Len() would also count other
		// campaigns' and other builds' entries, letting a typo'd -cache or
		// a recompile silently recompute everything under a "resuming"
		// banner.
		fp := cf.fingerprint
		if fp == "" {
			fp = sweep.Fingerprint()
		}
		cached := 0
		for _, u := range c.Units {
			key, err := u.Key(c.Cfg, fp)
			if err != nil {
				return err
			}
			if cache.Has(key) {
				cached++
			}
		}
		if cached == 0 {
			return fmt.Errorf("resume: cache %s holds no %s-campaign entries for fingerprint %s — use run to start a campaign (or -fingerprint to pin a cache epoch across builds)", cache.Dir(), c.Name, fp)
		}
		fmt.Fprintf(os.Stderr, "resuming %s campaign: %d/%d units cached\n", c.Name, cached, len(c.Units))
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.SetLogLevel(level)
	switch *logOut {
	case "":
	case "-":
		obs.SetLogOutput(os.Stderr)
	default:
		lf, err := os.Create(*logOut)
		if err != nil {
			return err
		}
		defer lf.Close()
		obs.SetLogOutput(lf)
		defer obs.SetLogOutput(nil)
	}

	opts := sweep.Options{
		Cache:       cache,
		Fingerprint: cf.fingerprint,
		Workers:     *workers,
		Verify:      *verify,
	}
	// SIGINT/SIGTERM cancel the run context: in-flight units finish (their
	// results land in the cache and the JSONL stream), no new units start,
	// and the trace file is still written — the campaign stays resumable
	// and the trace loadable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Ctx = ctx
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		opts.Ctx = obs.WithTracer(ctx, tracer)
	}
	if *debugAddr != "" {
		debugSrv := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux(obs.Default)}
		go func() {
			fmt.Fprintf(os.Stderr, "debug plane on %s (/debug/pprof /debug/vars /metrics)\n", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "coyote-sweep: debug listener:", err)
			}
		}()
		defer debugSrv.Close()
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &opts.Shard, &opts.Shards); err != nil {
			return fmt.Errorf("bad -shard %q (want i/n): %v", *shard, err)
		}
	}
	var reporter *sweep.Reporter
	if *ctrl != "" {
		shards := max(opts.Shards, 1)
		reporter = sweep.NewReporter(*ctrl, c.Name, opts.Shard, shards, *hbEvery)
		reporter.Hook(&opts, sweep.PlannedUnits(c, opts.Shard, shards))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opts.Stream = w
	if *verbose {
		total := (len(c.Units) + max(opts.Shards, 1) - 1) / max(opts.Shards, 1)
		done := 0
		opts.Progress = func(us sweep.UnitStatus) {
			done++
			state := "miss"
			if us.Cached {
				state = "hit"
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-5s %-32s %v\n", done, total, state, us.Unit, us.Elapsed.Round(time.Millisecond))
		}
	}

	if reporter != nil {
		reporter.Start()
	}
	rep, err := sweep.Run(c, opts)
	if reporter != nil {
		if derr := reporter.Close(err == nil); derr != nil {
			fmt.Fprintf(os.Stderr, "coyote-sweep: controller delivery (advisory): %v\n", derr)
		}
	}
	if tracer != nil {
		if werr := tracer.WriteFile(*traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "coyote-sweep:", werr)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d trace spans to %s\n", tracer.Len(), *traceOut)
		}
	}
	if *metrics {
		obs.Default.WriteProm(os.Stderr)
	}
	if err != nil {
		if ctx.Err() != nil {
			cacheHint := ""
			if cache != nil {
				cacheHint = " -cache " + cache.Dir()
			}
			fmt.Fprintf(os.Stderr, "interrupted: finished units are streamed and cached; resume with: coyote-sweep resume -campaign %s%s\n", c.Name, cacheHint)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "%s campaign: %d units (%d cache hits, %d computed) in %v\n",
		rep.Campaign, len(rep.Results), rep.Hits, rep.Misses, rep.Elapsed.Round(time.Millisecond))
	return nil
}

func statusCmd(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var cf campaignFlags
	cf.register(fs)
	fs.Parse(args)
	c, cache, err := cf.load()
	if err != nil {
		return err
	}
	if cache == nil {
		return fmt.Errorf("status: -cache is required")
	}
	fp := cf.fingerprint
	if fp == "" {
		fp = sweep.Fingerprint()
	}
	byKind := map[string][2]int{} // kind -> {cached, total}
	cached := 0
	for _, u := range c.Units {
		key, err := u.Key(c.Cfg, fp)
		if err != nil {
			return err
		}
		st := byKind[u.Kind]
		st[1]++
		if cache.Has(key) {
			st[0]++
			cached++
		}
		byKind[u.Kind] = st
	}
	fmt.Printf("campaign %s: %d/%d units cached (fingerprint %s)\n", c.Name, cached, len(c.Units), fp)
	for _, kind := range []string{"exp", "corpus", "scen", "file"} {
		if st, ok := byKind[kind]; ok {
			fmt.Printf("  %-7s %d/%d\n", kind, st[0], st[1])
		}
	}
	if cached < len(c.Units) {
		fmt.Printf("resume with: coyote-sweep resume -campaign %s -cache %s\n", c.Name, cache.Dir())
	}
	return nil
}

func mergeCmd(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "write merged JSONL here (default stdout)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: at least one shard JSONL file required")
	}
	var shards [][]sweep.Result
	for _, path := range fs.Args() {
		res, err := readJSONLFile(path)
		if err != nil {
			return err
		}
		shards = append(shards, res)
	}
	merged, err := sweep.MergeResults(shards...)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteJSONL(w, merged)
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0, "numeric tolerance per cell (0 = exact)")
	golden := fs.String("golden", "", "compare against this golden corpus directory")
	fs.Parse(args)

	var a, b []sweep.Result
	var aName, bName string
	var err error
	switch {
	case *golden != "" && fs.NArg() == 1:
		aName, bName = *golden, fs.Arg(0)
		a, err = sweep.ReadGolden(*golden)
		if err != nil {
			return err
		}
		b, err = readJSONLFile(fs.Arg(0))
	case *golden == "" && fs.NArg() == 2:
		aName, bName = fs.Arg(0), fs.Arg(1)
		a, err = readJSONLFile(fs.Arg(0))
		if err != nil {
			return err
		}
		b, err = readJSONLFile(fs.Arg(1))
	default:
		return fmt.Errorf("diff: want two JSONL files, or -golden DIR and one JSONL file")
	}
	if err != nil {
		return err
	}

	drifts := sweep.Diff(a, b, *tol)
	if len(drifts) == 0 {
		fmt.Printf("no drift: %s and %s agree on %d units (tol %g)\n", aName, bName, len(a), *tol)
		return nil
	}
	for _, d := range drifts {
		fmt.Println(d)
	}
	return fmt.Errorf("%d drift(s) between %s and %s", len(drifts), aName, bName)
}

func readJSONLFile(path string) ([]sweep.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := sweep.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
