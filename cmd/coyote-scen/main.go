// Command coyote-scen drives the scenario engine: it generates parametric
// topologies (Waxman, Barabási–Albert, fat-tree, grid, ring), converts
// real topology files (Topology Zoo GraphML, SNDlib native) to the repo's
// text format, and sweeps generated scenarios through the evaluation
// engine.
//
// Usage:
//
//	coyote-scen list
//	coyote-scen generate -gen waxman -n 50 -seed 7 [-dot]
//	coyote-scen convert -in Geant.graphml [-dot]
//	coyote-scen sweep -gen fattree -k 4 -demand hotspot -margins 1,2,3
//	coyote-scen sweep -in abilene.snd -demand gravity -quick
//	coyote-scen sweep -gen ring -n 8 -quick -json   # machine-readable table
//
// Every generator is deterministic: the same flags always produce the
// byte-identical topology.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	coyote "github.com/coyote-te/coyote"
	"github.com/coyote-te/coyote/internal/exp"
	"github.com/coyote-te/coyote/internal/scen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList()
	case "generate":
		err = runGenerate(args)
	case "convert":
		err = runConvert(args)
	case "sweep":
		err = runSweep(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "coyote-scen: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coyote-scen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `coyote-scen — scenario engine CLI

Subcommands:
  list       registered generators, demand models, and corpus topologies
  generate   build a parametric topology and print it (text or -dot)
  convert    read GraphML / SNDlib / text (-in file or stdin) and print text
  sweep      margin-sweep a generated or loaded topology through the evaluator

Run 'coyote-scen <subcommand> -h' for flags.
`)
}

// genFlags registers the generator parameter flags shared by generate and
// sweep and returns the name/params accessors.
func genFlags(fs *flag.FlagSet) (gen *string, params func() coyote.GenParams) {
	gen = fs.String("gen", "", "generator name (see 'coyote-scen list')")
	n := fs.Int("n", 20, "node count (waxman, ba, ring)")
	seed := fs.Int64("seed", 0, "generator seed; same seed, same topology")
	alpha := fs.Float64("alpha", 0.4, "Waxman alpha")
	beta := fs.Float64("beta", 0.2, "Waxman beta")
	m := fs.Int("m", 2, "links per new node (ba) / chord count (ring)")
	k := fs.Int("k", 4, "fat-tree arity (even)")
	rows := fs.Int("rows", 4, "grid rows")
	cols := fs.Int("cols", 5, "grid cols")
	wrap := fs.Bool("wrap", false, "wrap the grid into a torus")
	params = func() coyote.GenParams {
		return coyote.GenParams{
			N: *n, Seed: *seed, Alpha: *alpha, Beta: *beta,
			M: *m, K: *k, Rows: *rows, Cols: *cols, Wrap: *wrap,
		}
	}
	return gen, params
}

func runList() error {
	fmt.Println("topology generators (coyote-scen generate -gen ...):")
	for _, g := range coyote.ScenarioGenerators() {
		fmt.Printf("  %-8s %s\n", g.Name, g.Desc)
	}
	fmt.Println("\ndemand models (-demand ...):")
	fmt.Printf("  %s\n", strings.Join(coyote.DemandModels(), ", "))
	fmt.Println("\ncorpus topologies (cmd/coyote -topo ...):")
	for _, name := range coyote.TopologyNames() {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	gen, params := genFlags(fs)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text format")
	fs.Parse(args)
	if *gen == "" {
		return fmt.Errorf("generate: -gen is required (try -gen waxman; see 'coyote-scen list')")
	}
	t, err := coyote.GenerateTopology(*gen, params())
	if err != nil {
		return err
	}
	if *dot {
		return t.WriteDOT(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input file (GraphML, SNDlib native, or text; default stdin)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text format")
	fs.Parse(args)
	var (
		t   *coyote.Topology
		err error
	)
	if *in == "" {
		t, err = coyote.ReadTopologyAuto(os.Stdin)
	} else {
		t, err = coyote.ReadTopologyFile(*in)
	}
	if err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "coyote-scen: warning:", err)
	}
	if *dot {
		return t.WriteDOT(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	gen, params := genFlags(fs)
	in := fs.String("in", "", "sweep a topology file instead of a generated one")
	model := fs.String("demand", "gravity", "demand model (see 'coyote-scen list')")
	margins := fs.String("margins", "1,1.5,2,2.5,3", "comma-separated uncertainty margins")
	quick := fs.Bool("quick", false, "use the reduced (smoke-test) configuration")
	workers := fs.Int("workers", 0, "worker-pool size (0 = one per CPU; results identical for any value)")
	jsonOut := fs.Bool("json", false, "emit the sweep table as JSON ({title, columns, rows}) instead of text")
	fs.Parse(args)

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	cfg.Workers = *workers
	if ms, err := parseMargins(*margins); err != nil {
		return err
	} else if len(ms) > 0 {
		cfg.Margins = ms
	}
	p := params()
	cfg.Seed = p.Seed

	var (
		tab *exp.Table
		err error
	)
	switch {
	case *in != "" && *gen != "":
		return fmt.Errorf("sweep: use either -gen or -in, not both")
	case *in != "":
		g, rerr := scen.ReadFile(*in)
		if rerr != nil {
			return rerr
		}
		tab, err = exp.SweepGraph(fmt.Sprintf("Scenario sweep — %s", *in), g, *model, cfg)
	case *gen != "":
		tab, err = exp.ScenSweep(*gen, p, *model, cfg)
	default:
		return fmt.Errorf("sweep: -gen or -in is required")
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		return tab.WriteJSON(os.Stdout)
	}
	_, err = tab.WriteTo(os.Stdout)
	return err
}

func parseMargins(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("sweep: bad margin %q (want numbers ≥ 1)", part)
		}
		out = append(out, v)
	}
	return out, nil
}
