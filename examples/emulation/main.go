// Emulation: the prototype experiment of §VII (Fig. 12) — three traffic
// scenarios over the three-node network, comparing the packet-drop rates
// of the two ECMP-achievable TE configurations against COYOTE's
// per-prefix forwarding DAGs.
package main

import (
	"log"
	"os"

	"github.com/coyote-te/coyote/internal/exp"
)

func main() {
	tab, err := exp.Fig12(exp.Default())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tab.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
