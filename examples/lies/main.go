// Lies: reproduce Fig. 1d of the paper — realize a 2/3 : 1/3 split at s1
// by injecting a single fake node into the OSPF link-state database, then
// verify that SPF over the augmented database installs exactly the desired
// FIB.
package main

import (
	"fmt"
	"log"

	"github.com/coyote-te/coyote/internal/dagx"
	"github.com/coyote-te/coyote/internal/fibbing"
	"github.com/coyote-te/coyote/internal/graph"
	"github.com/coyote-te/coyote/internal/pdrouting"
	"github.com/coyote-te/coyote/internal/wcmp"
)

func main() {
	g := graph.New()
	s1 := g.AddNode("s1")
	s2 := g.AddNode("s2")
	v := g.AddNode("v")
	t := g.AddNode("t")
	g.AddLink(s1, s2, 1, 1)
	g.AddLink(s1, v, 1, 1)
	g.AddLink(s2, v, 1, 1)
	g.AddLink(s2, t, 1, 1)
	g.AddLink(v, t, 1, 1)

	// COYOTE wants s1 to send 2/3 of its t-traffic via s2 and 1/3 via v
	// (Fig. 1c/1d).
	dags := dagx.BuildAll(g, dagx.Augmented)
	r := pdrouting.Uniform(g, dags)
	es1s2, _ := g.FindEdge(s1, s2)
	es1v, _ := g.FindEdge(s1, v)
	if err := r.SetRatios(t, s1, map[graph.EdgeID]float64{es1s2: 2.0 / 3, es1v: 1.0 / 3}); err != nil {
		log.Fatal(err)
	}

	// Quantize to ECMP multiplicities and synthesize the lies.
	q, err := wcmp.Apply(r, 3)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := fibbing.Synthesize(g, q)
	if err != nil {
		log.Fatal(err)
	}
	if err := fibbing.Verify(g, q, syn); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Printf("synthesized %d fake nodes for %d destination(s)\n",
		syn.FakeNodes, len(syn.LiedDestinations))

	// Show what s1's FIB toward t looks like after the lies.
	fibs := syn.LSDB.SPF(t)
	fmt.Println("s1 FIB toward t (next-hop: ECMP multiplicity → realized split):")
	for nh, mult := range fibs[s1] {
		ratios := fibs[s1].Ratios()
		fmt.Printf("  via %-3s multiplicity %d → %.3f\n", g.Name(nh), mult, ratios[nh])
	}
}
