// Running example: the four-node network of Fig. 1 of the paper, worked
// end to end — ECMP's worst case, the hand-tuned Fig. 1c ratios, the
// golden-ratio optimum of Appendix B, and the configuration COYOTE's
// optimizer discovers.
package main

import (
	"log"
	"os"

	"github.com/coyote-te/coyote/internal/exp"
)

func main() {
	cfg := exp.Default()
	cfg.OptIters = 800
	tab, err := exp.RunningExample(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tab.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
