// Quickstart: compute a COYOTE configuration for a small network and
// compare its worst-case performance with traditional ECMP.
package main

import (
	"fmt"
	"log"

	coyote "github.com/coyote-te/coyote"
)

func main() {
	// A 6-router metro ring with two cross links.
	t := coyote.NewTopology()
	var ids []coyote.NodeID
	for _, name := range []string{"ams", "bru", "par", "lyo", "fra", "lux"} {
		ids = append(ids, t.AddNode(name))
	}
	for i := range ids {
		t.AddLink(ids[i], ids[(i+1)%len(ids)], 10, 1)
	}
	t.AddLink(ids[0], ids[3], 2.5, 4) // ams–lyo
	t.AddLink(ids[1], ids[4], 2.5, 4) // bru–fra

	// The operator estimates demands with the gravity model but only
	// trusts the estimate within a factor of two.
	base := coyote.GravityDemands(t, 1)
	bounds := coyote.MarginBounds(base, 2)

	cfg, err := coyote.New(t, bounds, coyote.Options{Seed: 1}).Compute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case normalized utilization (PERF):\n")
	fmt.Printf("  traditional ECMP : %.3f\n", cfg.ECMPPerf)
	fmt.Printf("  COYOTE           : %.3f\n", cfg.Perf)
	fmt.Printf("  improvement      : %.0f%%\n", 100*(cfg.ECMPPerf/cfg.Perf-1))

	// Realize the configuration on legacy OSPF/ECMP routers with at most
	// three extra virtual next-hops per interface.
	lies, err := cfg.Lies(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized with %d fake nodes (%d destinations lied about, %d virtual links)\n",
		lies.FakeNodes, lies.LiedDestinations, lies.VirtualLinks)
}
