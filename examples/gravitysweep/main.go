// Gravity sweep: a miniature Fig. 6 — how ECMP, the demands-aware Base
// routing, and COYOTE behave on the Geant backbone as the operator's
// demand uncertainty grows.
package main

import (
	"fmt"
	"log"

	coyote "github.com/coyote-te/coyote"
)

func main() {
	t, err := coyote.LoadTopology("Geant")
	if err != nil {
		log.Fatal(err)
	}
	base := coyote.GravityDemands(t, 1)
	fmt.Println("Geant, gravity demands — worst-case normalized utilization")
	fmt.Println("margin  ECMP    COYOTE  gain")
	for _, margin := range []float64{1, 1.5, 2, 2.5, 3} {
		cfg, err := coyote.New(t, coyote.MarginBounds(base, margin), coyote.Options{
			OptimizerIters:   400,
			AdversarialIters: 4,
			Seed:             1,
		}).Compute()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f     %.3f   %.3f   %.0f%%\n",
			margin, cfg.ECMPPerf, cfg.Perf, 100*(cfg.ECMPPerf/cfg.Perf-1))
	}
}
