package coyote

import (
	"fmt"

	"github.com/coyote-te/coyote/internal/scen"
)

// This file is the public face of the scenario engine (internal/scen):
// parametric topology generators, demand workload models beyond
// gravity/bimodal, failure suites, and the Scenario bundle that composes
// them. cmd/coyote-scen drives the same API from the command line.

// GenParams parameterizes a topology generator: node count, seed, and the
// generator-specific knobs (Waxman α/β, Barabási–Albert M, fat-tree K,
// grid Rows/Cols/Wrap, capacity classes). The zero value is valid; Seed
// defaults to 0 and every generator is deterministic in (name, GenParams).
type GenParams = scen.Params

// GeneratorInfo describes one registered topology generator.
type GeneratorInfo struct {
	Name string // the -gen name (e.g. "waxman")
	Desc string // one-line description of shape and knobs
}

// ScenarioGenerators lists the registered topology generators, sorted by
// name.
func ScenarioGenerators() []GeneratorInfo {
	gens := scen.Describe()
	out := make([]GeneratorInfo, len(gens))
	for i, g := range gens {
		out[i] = GeneratorInfo{Name: g.Name, Desc: g.Desc}
	}
	return out
}

// GenerateTopology builds a topology with the named generator (see
// ScenarioGenerators). The result is validated and strongly connected,
// and is a pure function of (gen, p) — the same inputs always produce the
// byte-identical topology.
func GenerateTopology(gen string, p GenParams) (*Topology, error) {
	g, err := scen.Generate(gen, p)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// DemandModels lists the demand-model names BuildDemands accepts:
// gravity, bimodal, hotspot, flash, uniform.
func DemandModels() []string { return scen.Models() }

// BuildDemands builds a named base demand model over a topology,
// normalized so the peak entry equals peak. The model set extends the
// paper's gravity/bimodal pair with the scenario-engine workloads
// (hotspot destinations, flash crowds, uniform all-pairs).
func BuildDemands(t *Topology, model string, peak float64, seed int64) (*DemandMatrix, error) {
	return scen.BaseMatrix(t.g, model, peak, seed)
}

// TimeOfDayDemands samples a diurnal demand sequence inside an
// uncertainty box: steps matrices tracing a sinusoidal day between the
// box's lower and upper bounds with ±jitter noise, every one inside the
// box. Evaluate a static configuration against each step to measure how
// one robust routing serves a whole day of traffic.
func TimeOfDayDemands(bounds *Bounds, steps int, jitter float64, seed int64) []*DemandMatrix {
	return scen.TimeOfDay(bounds, steps, jitter, seed)
}

// FailureSet is a named group of links that fail simultaneously (the
// representative EdgeID per bidirectional pair, as in Topology links).
type FailureSet = scen.FailureSet

// SingleLinkFailures enumerates every single physical-link failure of a
// topology — the precomputation suite of §VI-A.
func SingleLinkFailures(t *Topology) []FailureSet {
	return scen.SingleLinkFailures(t.g)
}

// KLinkFailures enumerates (count ≤ 0) or samples (count > 0, seeded)
// simultaneous k-link failures.
func KLinkFailures(t *Topology, k, count int, seed int64) ([]FailureSet, error) {
	if count > 0 {
		return scen.SampleKLinkFailures(t.g, k, count, seed)
	}
	return scen.KLinkFailures(t.g, k)
}

// SRLGFailures partitions a topology's links into shared-risk link
// groups (deterministic in seed), each a simultaneous-failure scenario.
func SRLGFailures(t *Topology, groups int, seed int64) []FailureSet {
	return scen.SRLGPartition(t.g, groups, seed)
}

// Scenario bundles one evaluation scenario: a topology, a base demand
// estimate, the operator's uncertainty bounds around it, and a failure
// suite. Compose one by hand or with GenerateScenario.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Topology is the network under evaluation.
	Topology *Topology
	// Base is the base demand estimate the bounds wrap (nil for purely
	// oblivious scenarios).
	Base *DemandMatrix
	// Bounds is the uncertainty set Compute optimizes against.
	Bounds *Bounds
	// Failures is the failure suite to precompute configurations for
	// (may be empty).
	Failures []FailureSet
}

// GenerateScenario composes a full scenario: a generated topology, a
// demand model with the given uncertainty margin (margin ≤ 0 selects full
// demand obliviousness), and the single-link failure suite.
func GenerateScenario(gen string, p GenParams, model string, margin float64) (*Scenario, error) {
	t, err := GenerateTopology(gen, p)
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		Name:     fmt.Sprintf("%s-n%d-seed%d/%s", gen, t.NumNodes(), p.Seed, model),
		Topology: t,
		Failures: SingleLinkFailures(t),
	}
	if margin <= 0 {
		s.Bounds = ObliviousBounds(t, 1)
		return s, nil
	}
	s.Base, err = BuildDemands(t, model, 1, p.Seed)
	if err != nil {
		return nil, err
	}
	s.Bounds = MarginBounds(s.Base, margin)
	return s, nil
}

// Compute runs the COYOTE pipeline on the scenario's topology and bounds.
func (s *Scenario) Compute(opts ...Options) (*Config, error) {
	if s.Topology == nil || s.Bounds == nil {
		return nil, fmt.Errorf("coyote: scenario %q needs a topology and bounds", s.Name)
	}
	return New(s.Topology, s.Bounds, opts...).Compute()
}
